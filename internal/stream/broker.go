package stream

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
)

// Default tuning values; see Options and SubscribeOptions.
const (
	// DefaultRing is the in-memory ring capacity in events.
	DefaultRing = 1024
	// DefaultBuffer is a subscription's channel buffer.
	DefaultBuffer = 64
	// fetchBatch bounds how many events one pump iteration moves.
	fetchBatch = 256
)

// ErrClosed is returned by Publish and Subscribe after Close.
var ErrClosed = errors.New("stream: broker closed")

// Log is the durable, cursor-addressed record log a Broker retains events
// in beyond its ring — implemented by the wal package's SegmentedLog (the
// broker depends on the shape, not the package, so the wal tests can keep
// exercising the serving layer without an import cycle). Cursors are dense
// and strictly increasing from 1; ReadFrom returns payloads for cursors
// [cursor, cursor+max), and a position the retention policy trimmed away
// reports an error whose Resume method names the oldest retained cursor.
type Log interface {
	Append(payload []byte) (uint64, error)
	ReadFrom(cursor uint64, max int) ([][]byte, error)
	FirstCursor() uint64
	NextCursor() uint64
	Close() error
}

// Options configure a Broker.
type Options struct {
	// Ring is the in-memory event ring capacity (0 = DefaultRing). Events
	// older than the ring are answered from Log when present, and are a gap
	// otherwise.
	Ring int
	// Log, when non-nil, durably retains events beyond the ring in rotated
	// segments, so cursors survive a restart. The broker owns it: Close
	// closes it.
	Log Log
	// Shards stamps events with a merged per-shard seq vector when > 1.
	Shards int
}

func (o Options) ring() int {
	if o.Ring <= 0 {
		return DefaultRing
	}
	return o.Ring
}

// Broker is the churn-event hub: serving writers append diffed events
// through Publish (one per shard, serialized by the broker's lock — the
// deterministic merge point of sharded streams), and any number of
// subscribers consume them at their own pace. Publish never blocks on a
// subscriber: each subscription is driven by its own pump goroutine that
// reads the ring (or the segment log) by cursor and emits a gap event when
// its position fell out of retained history.
type Broker struct {
	opts Options

	mu     sync.Mutex
	ring   []Event // ring[(first+i) % cap] holds cursor ringFirst+i
	ringN  int     // events currently in the ring
	head   int     // ring index of the oldest buffered event
	first  uint64  // cursor of ring[head] (oldest in memory)
	next   uint64  // next cursor to assign
	oldest uint64  // oldest retained cursor anywhere (log or ring)
	vec    []uint64
	wake   chan struct{}
	closed bool
	// logDead latches when a segment-log append failed or assigned a
	// position out of step with the broker's cursors. The log addresses
	// records by position, so one skipped append would silently shift every
	// later record's cursor at replay time; a dead log keeps its intact
	// prefix readable and is never appended to again (LogErrors counts the
	// events that lost durable coverage).
	logDead bool
	// logTail serializes segment-log appends in cursor order without
	// holding mu across file I/O: each publisher takes a FIFO ticket under
	// mu (the predecessor's done channel) and a fresh done channel of its
	// own, then waits and appends outside the lock. Stamp order and append
	// order therefore agree — the invariant position-addressed replay
	// depends on — while subscriber fetches never queue behind the disk.
	logTail chan struct{}

	published   atomic.Uint64
	logErrors   atomic.Uint64
	subscribers atomic.Int64
	gaps        atomic.Uint64
	perShard    []atomic.Uint64
}

// NewBroker builds a Broker. With a Log, the cursor sequence continues from
// the log's retained history (restart resume); otherwise cursors start at 1.
func NewBroker(opts Options) *Broker {
	b := &Broker{
		opts: opts,
		ring: make([]Event, opts.ring()),
		next: 1,
		wake: make(chan struct{}),
	}
	if opts.Shards > 1 {
		b.vec = make([]uint64, opts.Shards)
		b.perShard = make([]atomic.Uint64, opts.Shards)
	} else {
		b.perShard = make([]atomic.Uint64, 1)
	}
	if opts.Log != nil {
		b.next = opts.Log.NextCursor()
		b.oldest = opts.Log.FirstCursor()
		b.logTail = make(chan struct{})
		close(b.logTail) // the first publisher's turn is immediate
	} else {
		b.oldest = 1
	}
	b.first = b.next
	return b
}

// Stats reports broker activity.
type Stats struct {
	// Published counts events appended since the broker was built;
	// PerShard breaks it down by emitting shard (len 1 unsharded).
	Published uint64
	PerShard  []uint64
	// Subscribers is the number of live subscriptions.
	Subscribers int
	// Gaps counts synthetic gap events delivered to subscribers whose
	// cursor fell out of retained history.
	Gaps uint64
	// LogErrors counts events that could not be appended to the durable
	// segment log (they remain observable through the ring).
	LogErrors uint64
	// FirstCursor and NextCursor bound the retained history.
	FirstCursor uint64
	NextCursor  uint64
}

// Stats returns current broker counters. Safe from any goroutine.
func (b *Broker) Stats() Stats {
	b.mu.Lock()
	first, next := b.oldest, b.next
	b.mu.Unlock()
	per := make([]uint64, len(b.perShard))
	for i := range b.perShard {
		per[i] = b.perShard[i].Load()
	}
	return Stats{
		Published:   b.published.Load(),
		PerShard:    per,
		Subscribers: int(b.subscribers.Load()),
		Gaps:        b.gaps.Load(),
		LogErrors:   b.logErrors.Load(),
		FirstCursor: first,
		NextCursor:  next,
	}
}

// Publish stamps events with cursors and the generation identity (seq for
// the emitting shard; the merged seq vector in sharded mode) and appends
// them to the ring and the segment log. It is the single serialization
// point of sharded streams: whichever shard's writer wins the lock first
// owns the earlier cursors, and every subscriber — live, resumed, or
// replaying after a restart — observes that same order. Publish never
// blocks on subscribers; it only wakes them.
func (b *Broker) Publish(shard int, seq uint64, events []Event) error {
	if len(events) == 0 {
		return nil
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClosed
	}
	if b.vec != nil {
		if shard < 0 || shard >= len(b.vec) {
			b.mu.Unlock()
			return fmt.Errorf("stream: publish from shard %d of %d", shard, len(b.vec))
		}
		if seq > b.vec[shard] {
			b.vec[shard] = seq
		}
	}
	for i := range events {
		ev := &events[i]
		ev.Cursor = b.next
		ev.Shard = shard
		if b.vec != nil {
			ev.SeqVector = slices.Clone(b.vec)
			var sum uint64
			for _, s := range ev.SeqVector {
				sum += s
			}
			ev.Seq = sum
		} else {
			ev.Seq = seq
		}
		b.next++
		b.ringPush(*ev)
	}
	if b.opts.Log == nil {
		// No durable history: the ring bounds retention.
		b.oldest = b.first
	}
	logLive := b.opts.Log != nil && !b.logDead
	var turn, done chan struct{}
	if logLive {
		// Reserve this publish's slot in the append order while still under
		// mu: a concurrent shard's Publish stamps its cursors after ours
		// and will queue behind our done channel.
		turn, done = b.logTail, make(chan struct{})
		b.logTail = done
	}
	close(b.wake)
	b.wake = make(chan struct{})
	b.mu.Unlock()
	b.published.Add(uint64(len(events)))
	if shard >= 0 && shard < len(b.perShard) {
		b.perShard[shard].Add(uint64(len(events)))
	}
	if logLive {
		<-turn
		// A predecessor in the queue may have latched the log dead; a gap
		// in the positional sequence must never be appended over.
		b.mu.Lock()
		dead := b.logDead
		b.mu.Unlock()
		var logErrs uint64
		if dead {
			logErrs = uint64(len(events))
		}
		for i := 0; !dead && i < len(events); i++ {
			payload, err := EncodeEvent(events[i])
			var at uint64
			if err == nil {
				at, err = b.opts.Log.Append(payload)
			}
			if err == nil && at != events[i].Cursor {
				err = fmt.Errorf("stream: log assigned cursor %d to event %d", at, events[i].Cursor)
			}
			if err != nil {
				// The log addresses records by position: skipping one event
				// would silently shift every later record's cursor at replay
				// time. Latch the log dead instead — its intact prefix stays
				// readable, everything after lives in the ring only.
				dead = true
				logErrs = uint64(len(events) - i)
			}
		}
		close(done)
		b.mu.Lock()
		if dead {
			b.logDead = true
		}
		if floor := min(b.opts.Log.FirstCursor(), b.first); floor > b.oldest {
			// The retention policy trimmed sealed segments; the resumable
			// floor is whichever reaches further back, the log or the ring.
			b.oldest = floor
		}
		b.mu.Unlock()
		if logErrs > 0 {
			b.logErrors.Add(logErrs)
		}
	}
	return nil
}

// ringPush appends one stamped event to the ring, evicting the oldest when
// full. Caller holds b.mu.
func (b *Broker) ringPush(ev Event) {
	if b.ringN == len(b.ring) {
		b.head = (b.head + 1) % len(b.ring)
		b.first++
		b.ringN--
	}
	b.ring[(b.head+b.ringN)%len(b.ring)] = ev
	b.ringN++
}

// fetch returns up to max events starting at cursor. The ring is consulted
// first — a cursor it still holds is never a gap, even if the log's
// retention policy already trimmed it — then the segment log for older
// history. When the cursor fell out of both it returns the resume floor
// instead (gapTo > 0); when no event exists yet it returns the channel the
// next Publish closes.
func (b *Broker) fetch(cursor uint64, max int) (events []Event, gapTo uint64, wait <-chan struct{}, closed bool, err error) {
	b.mu.Lock()
	if cursor >= b.next {
		wait, closed = b.wake, b.closed
		b.mu.Unlock()
		return nil, 0, wait, closed, nil
	}
	if cursor >= b.first {
		// Serve from the ring: contiguous cursors from ring[head].
		idx := int(cursor - b.first)
		n := b.ringN - idx
		if n > max {
			n = max
		}
		events = make([]Event, 0, n)
		for i := 0; i < n; i++ {
			events = append(events, b.ring[(b.head+idx+i)%len(b.ring)])
		}
		b.mu.Unlock()
		return events, 0, nil, false, nil
	}
	ringFirst := b.first
	log := b.opts.Log
	b.mu.Unlock()
	if log == nil {
		// No durable history below the ring: the ring floor is the gap
		// resume point.
		return nil, ringFirst, nil, false, nil
	}
	payloads, err := log.ReadFrom(cursor, max)
	if err != nil {
		var trimmed interface{ Resume() uint64 }
		if errors.As(err, &trimmed) {
			// Resume from the trimmed log's floor — or the ring's, when
			// retention already trimmed past what the ring still buffers.
			floor := trimmed.Resume()
			if floor > ringFirst {
				floor = ringFirst
			}
			return nil, floor, nil, false, nil
		}
		return nil, 0, nil, false, err
	}
	events = make([]Event, 0, len(payloads))
	for _, p := range payloads {
		ev, derr := DecodeEvent(p)
		if derr != nil {
			return nil, 0, nil, false, derr
		}
		events = append(events, ev)
	}
	if len(events) == 0 {
		// The log lost the tail the ring still had (append errors): fall
		// forward to the ring rather than spinning.
		return nil, ringFirst, nil, false, nil
	}
	return events, 0, nil, false, nil
}

// SubscribeOptions filter and position one subscription.
type SubscribeOptions struct {
	// From is the first cursor wanted (inclusive; cursors start at 1).
	// 0 subscribes live: only events published after the call. Resuming
	// from an SSE Last-Event-ID (the last cursor seen) means From = id+1.
	From uint64
	// Families keeps only events whose Family is listed (nil keeps all).
	Families []string
	// Kinds keeps only the listed event kinds (nil keeps all). Gap events
	// are delivered regardless — dropping them would hide missed history.
	Kinds []Kind
	// Tier keeps only events of one tier ("" keeps both).
	Tier Tier
	// Buffer is the subscription channel's capacity (0 = DefaultBuffer).
	// The channel buffering plus the broker ring are the slack a slow
	// consumer has before it is handed a gap event.
	Buffer int
}

func (o SubscribeOptions) buffer() int {
	if o.Buffer <= 0 {
		return DefaultBuffer
	}
	return o.Buffer
}

func (o SubscribeOptions) match(ev Event) bool {
	if ev.Kind == KindGap {
		return true
	}
	if o.Tier != "" && ev.Tier != o.Tier {
		return false
	}
	if len(o.Kinds) > 0 && !slices.Contains(o.Kinds, ev.Kind) {
		return false
	}
	if len(o.Families) > 0 && !slices.Contains(o.Families, ev.Family) {
		return false
	}
	return true
}

// Subscription is one consumer of the stream; receive from Events. The
// channel closes when ctx is done or the broker closes (after delivering
// everything already published).
type Subscription struct {
	// Events delivers matching events in cursor order.
	Events <-chan Event
}

// Subscribe starts a subscription pump. Events with cursors >= opts.From
// (or published after the call, when From is 0) that match the filters are
// delivered in cursor order on the returned channel. A position that falls
// out of retained history — a resume older than retention keeps, or a slow
// consumer overrun by the ring — delivers one gap event carrying the missed
// range, then continues from the oldest retained cursor. The pump, not the
// publisher, blocks on a full channel.
func (b *Broker) Subscribe(ctx context.Context, opts SubscribeOptions) (*Subscription, error) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrClosed
	}
	cursor := opts.From
	if cursor == 0 {
		cursor = b.next
	}
	b.mu.Unlock()
	ch := make(chan Event, opts.buffer())
	b.subscribers.Add(1)
	go b.pump(ctx, cursor, opts, ch)
	return &Subscription{Events: ch}, nil
}

func (b *Broker) pump(ctx context.Context, cursor uint64, opts SubscribeOptions, ch chan<- Event) {
	defer close(ch)
	defer b.subscribers.Add(-1)
	send := func(ev Event) bool {
		select {
		case ch <- ev:
			return true
		case <-ctx.Done():
			return false
		}
	}
	for {
		events, gapTo, wait, closed, err := b.fetch(cursor, fetchBatch)
		if err != nil {
			// Retained history became unreadable (disk damage while paging
			// the segment log): surface what was missed as a gap and resume
			// from the ring's floor — events the ring still buffers are
			// deliverable regardless of the log's health.
			b.mu.Lock()
			gapTo = b.first
			b.mu.Unlock()
			if gapTo <= cursor {
				gapTo = cursor + 1 // always make progress past the bad record
			}
		}
		if gapTo > 0 {
			if gapTo <= cursor {
				continue // raced a concurrent publish; re-fetch
			}
			b.gaps.Add(1)
			if !send(Event{Kind: KindGap, From: cursor, To: gapTo - 1}) {
				return
			}
			cursor = gapTo
			continue
		}
		if len(events) == 0 {
			if closed {
				return
			}
			select {
			case <-wait:
			case <-ctx.Done():
				return
			}
			continue
		}
		for _, ev := range events {
			cursor = ev.Cursor + 1
			if !opts.match(ev) {
				continue
			}
			if !send(ev) {
				return
			}
		}
	}
}

// Close stops the broker: subscribers drain what was already published and
// their channels close; the backing segment log (if any) is synced and
// closed. Publish and Subscribe fail afterwards. Close the serving writers
// first — a Publish racing Close may be dropped.
func (b *Broker) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	close(b.wake)
	b.wake = make(chan struct{})
	log := b.opts.Log
	b.mu.Unlock()
	if log != nil {
		return log.Close()
	}
	return nil
}
