package stream

import (
	"context"
	"fmt"
	"testing"

	"annotadb/internal/itemset"
	"annotadb/internal/relation"
	"annotadb/internal/rules"
)

// BenchmarkEventFanout measures publish latency as the subscriber count
// grows (0, 1, 8, 64 live subscribers, each with a draining consumer): the
// slow-subscriber policy's core claim is that the publish path costs the
// writer O(events) regardless of fanout, because delivery happens on the
// subscribers' pump goroutines. Each iteration publishes one generation
// diff worth of churn (8 events).
func BenchmarkEventFanout(b *testing.B) {
	for _, subs := range []int{0, 1, 8, 64} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			dict := relation.New().Dictionary()
			mkRule := func(i, pattern int) rules.Rule {
				l, err := dict.InternAnnotation(fmt.Sprintf("Annot_f%d:lhs", i))
				if err != nil {
					b.Fatal(err)
				}
				r, err := dict.InternAnnotation(fmt.Sprintf("Annot_f%d:rhs", i))
				if err != nil {
					b.Fatal(err)
				}
				return rules.Rule{LHS: itemset.New(l), RHS: r, PatternCount: pattern, LHSCount: pattern + 2, N: 100}
			}
			views := func(pattern int) TierViews {
				s := rules.NewSet()
				for i := 0; i < 8; i++ {
					s.Add(mkRule(i, pattern))
				}
				return TierViews{Valid: s.Freeze()}
			}
			broker := NewBroker(Options{Ring: 4096})
			defer broker.Close()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			for i := 0; i < subs; i++ {
				sub, err := broker.Subscribe(ctx, SubscribeOptions{Buffer: 256})
				if err != nil {
					b.Fatal(err)
				}
				go func() {
					for range sub.Events {
					}
				}()
			}
			// One deliberately stalled subscriber (never reads): the gap
			// policy, not the writer, absorbs it — publish latency must not
			// depend on it.
			if _, err := broker.Subscribe(ctx, SubscribeOptions{Buffer: 1}); err != nil {
				b.Fatal(err)
			}
			pub := NewPublisher(broker, 0, dict)
			prev, next := views(10), views(11)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Alternate the count so every publish diffs to 8
				// confidence_changed events.
				if i%2 == 0 {
					pub.Publish(uint64(i+2), prev, next)
				} else {
					pub.Publish(uint64(i+2), next, prev)
				}
			}
			b.StopTimer()
			if pub.Errors() > 0 {
				b.Fatalf("publish errors: %d", pub.Errors())
			}
		})
	}
}
