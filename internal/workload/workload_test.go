package workload

import (
	"testing"

	"annotadb/internal/itemset"
	"annotadb/internal/mining"
	"annotadb/internal/relation"
	"annotadb/internal/rules"
)

func smallSpec(seed int64) Spec {
	return Spec{
		Tuples:         800,
		DataDomain:     30,
		ValuesPerTuple: 4,
		Annotations:    6,
		AnnotationRate: 0.1,
		ZipfS:          1.2,
		Seed:           seed,
		Planted: []PlantedRule{
			{LHSData: []string{"28", "85"}, RHS: "Annot_1", Support: 0.45, Confidence: 0.9},
			{LHSAnnots: []string{"Annot_1"}, RHS: "Annot_5", Support: 0.4, Confidence: 0.85},
		},
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{Tuples: -1, DataDomain: 10},
		{Tuples: 10, DataDomain: 0},
		{Tuples: 10, DataDomain: 10, ValuesPerTuple: -1},
		{Tuples: 10, DataDomain: 10, AnnotationRate: 1.5},
		{Tuples: 10, DataDomain: 10, Planted: []PlantedRule{{RHS: "A", Support: 0.5, Confidence: 0.9}}},                          // empty LHS
		{Tuples: 10, DataDomain: 10, Planted: []PlantedRule{{LHSData: []string{"1"}, Support: 0.5, Confidence: 0.9}}},            // empty RHS
		{Tuples: 10, DataDomain: 10, Planted: []PlantedRule{{LHSData: []string{"1"}, RHS: "A", Support: 0.95, Confidence: 0.9}}}, // sup > conf
		{Tuples: 10, DataDomain: 10, Planted: []PlantedRule{{LHSData: []string{"1"}, RHS: "A", Support: 0.5, Confidence: 1.2}}},
	}
	for i, s := range bad {
		if _, err := NewGenerator(s); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
	if _, err := NewGenerator(smallSpec(1)); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g1, _ := NewGenerator(smallSpec(7))
	g2, _ := NewGenerator(smallSpec(7))
	r1, err := g1.Generate()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := g2.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Len() != r2.Len() {
		t.Fatalf("lengths differ: %d != %d", r1.Len(), r2.Len())
	}
	for i := 0; i < r1.Len(); i++ {
		t1, _ := r1.Tuple(i)
		t2, _ := r2.Tuple(i)
		if !t1.Items().Equal(t2.Items()) {
			t.Fatalf("tuple %d differs between same-seed runs", i)
		}
	}
	// Different seed differs somewhere.
	g3, _ := NewGenerator(smallSpec(8))
	r3, _ := g3.Generate()
	same := true
	for i := 0; i < r1.Len() && i < r3.Len(); i++ {
		t1, _ := r1.Tuple(i)
		t3, _ := r3.Tuple(i)
		if !t1.Items().Equal(t3.Items()) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical relations")
	}
}

func TestGenerateInvariantsAndScale(t *testing.T) {
	g, _ := NewGenerator(smallSpec(3))
	rel, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 800 {
		t.Fatalf("Len = %d", rel.Len())
	}
	if err := rel.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := rel.Stats()
	if st.DistinctAnnots == 0 || st.AnnotatedTuples == 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestPlantedRulesAreMinable is the point of the generator: planted
// correlations must surface as rules near their target statistics. The
// planted vocabulary here is disjoint from the Annot_1..Annot_K noise
// vocabulary and between rules, so the targets are not shifted by overlap
// (overlap is legal — Default8K uses it deliberately — but makes exact
// statistical assertions impossible).
func TestPlantedRulesAreMinable(t *testing.T) {
	spec := smallSpec(11)
	spec.Planted = []PlantedRule{
		{LHSData: []string{"28", "85"}, RHS: "Annot_R1", Support: 0.45, Confidence: 0.9},
		{LHSAnnots: []string{"Annot_R2"}, RHS: "Annot_R3", Support: 0.4, Confidence: 0.85},
	}
	g, err := NewGenerator(spec)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	res, err := mining.Mine(rel, mining.Config{MinSupport: 0.3, MinConfidence: 0.7, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	dict := rel.Dictionary()
	v28, _ := dict.Lookup("28")
	v85, _ := dict.Lookup("85")
	r1, _ := dict.Lookup("Annot_R1")
	r2, _ := dict.Lookup("Annot_R2")
	r3, _ := dict.Lookup("Annot_R3")

	r, ok := res.Rules.Get(rules.Rule{LHS: itemset.New(v28, v85), RHS: r1}.ID())
	if !ok {
		t.Fatal("planted D2A rule not mined")
	}
	if r.Support() < 0.38 || r.Support() > 0.52 {
		t.Errorf("planted support drifted: %v (target 0.45)", r.Support())
	}
	if r.Confidence() < 0.85 || r.Confidence() > 0.95 {
		t.Errorf("planted confidence drifted: %v (target 0.9)", r.Confidence())
	}
	a2a, ok := res.Rules.Get(rules.Rule{LHS: itemset.New(r2), RHS: r3}.ID())
	if !ok {
		t.Fatal("planted A2A rule not mined")
	}
	if a2a.Confidence() < 0.8 || a2a.Confidence() > 0.9 {
		t.Errorf("planted A2A confidence drifted: %v (target 0.85)", a2a.Confidence())
	}
}

func TestGenerateWithWithholding(t *testing.T) {
	g, _ := NewGenerator(smallSpec(13))
	rel, truth, err := g.GenerateWithWithholding(0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(truth) == 0 {
		t.Fatal("nothing withheld at 20%")
	}
	// Withheld annotations must actually be absent.
	for idx, want := range truth {
		tu, err := rel.Tuple(idx)
		if err != nil {
			t.Fatalf("truth index %d out of range", idx)
		}
		for _, a := range want {
			if tu.Annots.Contains(a) {
				t.Errorf("tuple %d still carries withheld %v", idx, a)
			}
		}
	}
	// Bad fraction rejected.
	if _, _, err := g.GenerateWithWithholding(1.5); err == nil {
		t.Error("bad withhold fraction accepted")
	}
}

func TestBatches(t *testing.T) {
	g, _ := NewGenerator(smallSpec(17))
	rel, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	dict := rel.Dictionary()

	annotated, err := g.AnnotatedTuples(dict, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(annotated) != 50 {
		t.Fatalf("annotated batch len = %d", len(annotated))
	}
	anyAnnots := false
	for _, tu := range annotated {
		if tu.Annotated() {
			anyAnnots = true
		}
	}
	if !anyAnnots {
		t.Error("annotated batch carries no annotations at all")
	}

	plain, err := g.UnannotatedTuples(dict, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i, tu := range plain {
		if tu.Annotated() {
			t.Fatalf("unannotated batch tuple %d has annotations", i)
		}
	}

	batch, err := g.AnnotationBatch(rel, 40, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 40 {
		t.Fatalf("annotation batch len = %d", len(batch))
	}
	for _, u := range batch {
		if u.Index < 0 || u.Index >= rel.Len() {
			t.Errorf("batch index %d out of range", u.Index)
		}
		if !u.Annotation.IsAnnotation() {
			t.Errorf("batch item %v not an annotation", u.Annotation)
		}
	}
	// Applying the batch through the relation must hold invariants
	// (duplicates are legal and skipped).
	if _, _, err := rel.ApplyUpdates(batch); err != nil {
		t.Fatal(err)
	}
	if err := rel.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAnnotationBatchEdgeCases(t *testing.T) {
	g, _ := NewGenerator(smallSpec(19))
	rel := relation.New()
	if batch, err := g.AnnotationBatch(rel, 10, 0.5); err != nil || batch != nil {
		t.Errorf("empty relation: batch=%v err=%v", batch, err)
	}
	rel2, _ := g.Generate()
	if _, err := g.AnnotationBatch(rel2, 10, 1.5); err == nil {
		t.Error("bad reinforce accepted")
	}
	if batch, err := g.AnnotationBatch(rel2, 0, 0.5); err != nil || batch != nil {
		t.Errorf("zero m: batch=%v err=%v", batch, err)
	}
}

func TestDefault8KSpec(t *testing.T) {
	spec := Default8K(1)
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if spec.Tuples != 8000 {
		t.Errorf("Tuples = %d, want the paper's 8000", spec.Tuples)
	}
	// It must actually generate (smoke, smaller copy).
	spec.Tuples = 200
	g, err := NewGenerator(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Generate(); err != nil {
		t.Fatal(err)
	}
}

func TestUniformNoiseWhenZipfDisabled(t *testing.T) {
	spec := smallSpec(23)
	spec.ZipfS = 0 // uniform
	g, err := NewGenerator(spec)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != spec.Tuples {
		t.Errorf("Len = %d", rel.Len())
	}
}
