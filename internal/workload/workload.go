// Package workload synthesizes annotated datasets in the shape of the
// paper's evaluation data (Figure 4: ID-valued tuples with Annot_k tokens,
// ≈8000 entries), with correlations planted at controllable support and
// confidence. The paper notes that "knowledge of the true values was never
// necessary because the association rules would be the same regardless" —
// only the co-occurrence structure matters, which the generator controls
// exactly, making it a faithful substitute for the original (unpublished)
// dataset file.
//
// All generation is deterministic in the spec's Seed.
package workload

import (
	"fmt"
	"math/rand"
	"strconv"

	"annotadb/internal/itemset"
	"annotadb/internal/relation"
)

// PlantedRule describes a correlation to embed. On each generated tuple the
// LHS appears with probability Support/Confidence; when it does, the RHS
// annotation is attached with probability Confidence. The expected measured
// support of LHS∪{RHS} is then Support and the expected confidence is
// Confidence.
type PlantedRule struct {
	// LHSData are data-value tokens (a Def. 4.2 rule when non-empty).
	LHSData []string
	// LHSAnnots are annotation tokens (a Def. 4.3 rule when non-empty).
	LHSAnnots []string
	// RHS is the implied annotation token.
	RHS string
	// Support and Confidence are the target rule statistics.
	Support    float64
	Confidence float64
}

// Validate rejects unusable planted rules.
func (p PlantedRule) Validate() error {
	if len(p.LHSData) == 0 && len(p.LHSAnnots) == 0 {
		return fmt.Errorf("workload: planted rule has empty LHS")
	}
	if p.RHS == "" {
		return fmt.Errorf("workload: planted rule has empty RHS")
	}
	if p.Confidence <= 0 || p.Confidence > 1 {
		return fmt.Errorf("workload: planted confidence %v out of (0,1]", p.Confidence)
	}
	if p.Support <= 0 || p.Support > p.Confidence {
		return fmt.Errorf("workload: planted support %v out of (0, confidence=%v]", p.Support, p.Confidence)
	}
	return nil
}

// Spec configures a synthetic dataset.
type Spec struct {
	// Tuples is the relation size (the paper's evaluation used ≈8000).
	Tuples int
	// DataDomain is the number of distinct noise data-value tokens.
	DataDomain int
	// ValuesPerTuple is the number of noise data values drawn per tuple.
	ValuesPerTuple int
	// Annotations is the number of distinct noise annotation tokens
	// (Annot_1 … Annot_K).
	Annotations int
	// AnnotationRate is the probability that each noise annotation is
	// attached to a tuple.
	AnnotationRate float64
	// ZipfS skews the noise data-value distribution (values > 1 skew;
	// anything ≤ 1 means uniform).
	ZipfS float64
	// Planted lists the correlations to embed.
	Planted []PlantedRule
	// Seed makes generation reproducible.
	Seed int64
}

// Validate rejects unusable specs.
func (s Spec) Validate() error {
	if s.Tuples < 0 {
		return fmt.Errorf("workload: negative tuple count %d", s.Tuples)
	}
	if s.DataDomain < 1 {
		return fmt.Errorf("workload: data domain %d < 1", s.DataDomain)
	}
	if s.ValuesPerTuple < 0 {
		return fmt.Errorf("workload: negative values per tuple")
	}
	if s.AnnotationRate < 0 || s.AnnotationRate > 1 {
		return fmt.Errorf("workload: annotation rate %v out of [0,1]", s.AnnotationRate)
	}
	for _, p := range s.Planted {
		if err := p.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Default8K mirrors the paper's evaluation scale: roughly 8000 tuples, a
// modest annotation vocabulary, and a handful of strong planted rules that
// clear the paper's conservative thresholds (support 0.4, confidence 0.8).
func Default8K(seed int64) Spec {
	return Spec{
		Tuples:         8000,
		DataDomain:     60,
		ValuesPerTuple: 6,
		Annotations:    12,
		AnnotationRate: 0.08,
		ZipfS:          1.2,
		Seed:           seed,
		Planted: []PlantedRule{
			{LHSData: []string{"28", "85"}, RHS: "Annot_1", Support: 0.45, Confidence: 0.92},
			{LHSData: []string{"41"}, RHS: "Annot_4", Support: 0.42, Confidence: 0.85},
			{LHSAnnots: []string{"Annot_1"}, RHS: "Annot_5", Support: 0.41, Confidence: 0.88},
			{LHSData: []string{"12", "62"}, RHS: "Annot_2", Support: 0.30, Confidence: 0.75}, // near-miss pool
		},
	}
}

// Generator produces relations, tuple batches, and annotation batches from
// one spec with one deterministic random stream.
type Generator struct {
	spec Spec
	rng  *rand.Rand
	zipf *rand.Zipf
}

// NewGenerator validates the spec and prepares the random stream.
func NewGenerator(spec Spec) (*Generator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{spec: spec, rng: rand.New(rand.NewSource(spec.Seed))}
	if spec.ZipfS > 1 && spec.DataDomain > 1 {
		g.zipf = rand.NewZipf(g.rng, spec.ZipfS, 1, uint64(spec.DataDomain-1))
	}
	return g, nil
}

// Generate builds the full relation described by the spec.
func (g *Generator) Generate() (*relation.Relation, error) {
	rel := relation.New()
	tuples, _, err := g.tuples(rel.Dictionary(), g.spec.Tuples, 0, true)
	if err != nil {
		return nil, err
	}
	rel.Append(tuples...)
	return rel, nil
}

// GenerateWithWithholding builds the relation but withholds each planted
// RHS attachment with probability withhold, recording the withheld ground
// truth per tuple position. This is the E7 (exploitation quality) workload.
func (g *Generator) GenerateWithWithholding(withhold float64) (*relation.Relation, map[int]itemset.Itemset, error) {
	if withhold < 0 || withhold > 1 {
		return nil, nil, fmt.Errorf("workload: withhold fraction %v out of [0,1]", withhold)
	}
	rel := relation.New()
	tuples, truth, err := g.tuples(rel.Dictionary(), g.spec.Tuples, withhold, true)
	if err != nil {
		return nil, nil, err
	}
	rel.Append(tuples...)
	return rel, truth, nil
}

// AnnotatedTuples samples a Case 1 batch from the same distribution.
func (g *Generator) AnnotatedTuples(dict *relation.Dictionary, n int) ([]relation.Tuple, error) {
	tuples, _, err := g.tuples(dict, n, 0, true)
	return tuples, err
}

// UnannotatedTuples samples a Case 2 batch: same data distribution, no
// annotations.
func (g *Generator) UnannotatedTuples(dict *relation.Dictionary, n int) ([]relation.Tuple, error) {
	tuples, _, err := g.tuples(dict, n, 0, false)
	return tuples, err
}

// tuples samples n tuples. withhold removes planted RHS attachments into
// the truth map (keyed by position offset within this batch). annotated
// false suppresses all annotations.
func (g *Generator) tuples(dict *relation.Dictionary, n int, withhold float64, annotated bool) ([]relation.Tuple, map[int]itemset.Itemset, error) {
	out := make([]relation.Tuple, 0, n)
	truth := make(map[int]itemset.Itemset)
	for i := 0; i < n; i++ {
		var items []itemset.Item
		// Planted correlations first.
		if annotated {
			for _, p := range g.spec.Planted {
				pLHS := p.Support / p.Confidence
				if g.rng.Float64() >= pLHS {
					continue
				}
				for _, tok := range p.LHSData {
					it, err := dict.InternData(tok)
					if err != nil {
						return nil, nil, err
					}
					items = append(items, it)
				}
				for _, tok := range p.LHSAnnots {
					it, err := dict.InternAnnotation(tok)
					if err != nil {
						return nil, nil, err
					}
					items = append(items, it)
				}
				if g.rng.Float64() < p.Confidence {
					it, err := dict.InternAnnotation(p.RHS)
					if err != nil {
						return nil, nil, err
					}
					if withhold > 0 && g.rng.Float64() < withhold {
						truth[i] = truth[i].Add(it)
					} else {
						items = append(items, it)
					}
				}
			}
		} else {
			// Case 2 batches still carry the planted LHS data values so
			// they dilute rule confidence, as the paper describes.
			for _, p := range g.spec.Planted {
				if len(p.LHSData) == 0 {
					continue
				}
				if g.rng.Float64() >= p.Support/p.Confidence {
					continue
				}
				for _, tok := range p.LHSData {
					it, err := dict.InternData(tok)
					if err != nil {
						return nil, nil, err
					}
					items = append(items, it)
				}
			}
		}
		// Noise data values.
		for v := 0; v < g.spec.ValuesPerTuple; v++ {
			it, err := dict.InternData(g.noiseValue())
			if err != nil {
				return nil, nil, err
			}
			items = append(items, it)
		}
		// Noise annotations.
		if annotated {
			for a := 1; a <= g.spec.Annotations; a++ {
				if g.rng.Float64() < g.spec.AnnotationRate {
					it, err := dict.InternAnnotation("Annot_" + strconv.Itoa(a))
					if err != nil {
						return nil, nil, err
					}
					items = append(items, it)
				}
			}
		}
		tu := relation.NewTuple(items...)
		// An annotation withheld from one planted rule can still arrive via
		// noise or another rule's LHS; it is then not missing after all.
		if want, ok := truth[i]; ok {
			want = want.Subtract(tu.Annots)
			if want.Empty() {
				delete(truth, i)
			} else {
				truth[i] = want
			}
		}
		out = append(out, tu)
	}
	return out, truth, nil
}

// noiseValue draws a noise data token. Tokens are numeric IDs offset away
// from the planted tokens' range (which are small numbers like "28").
func (g *Generator) noiseValue() string {
	var v uint64
	if g.zipf != nil {
		v = g.zipf.Uint64()
	} else {
		v = uint64(g.rng.Intn(g.spec.DataDomain))
	}
	return strconv.FormatUint(1000+v, 10)
}

// AnnotationBatch samples a Case 3 δ batch of m annotation additions over
// the current relation. A reinforce fraction of the updates target planted
// rules (attaching the planted RHS to tuples already containing the LHS but
// missing the RHS), which is what drives promotions; the rest attach random
// annotations to random tuples.
func (g *Generator) AnnotationBatch(rel *relation.Relation, m int, reinforce float64) ([]relation.AnnotationUpdate, error) {
	if reinforce < 0 || reinforce > 1 {
		return nil, fmt.Errorf("workload: reinforce fraction %v out of [0,1]", reinforce)
	}
	if rel.Len() == 0 || m <= 0 {
		return nil, nil
	}
	dict := rel.Dictionary()
	var batch []relation.AnnotationUpdate
	// Pre-resolve planted LHS/RHS items that exist in this dictionary.
	type planted struct {
		lhs itemset.Itemset
		rhs itemset.Item
	}
	var ps []planted
	for _, p := range g.spec.Planted {
		var lhs []itemset.Item
		ok := true
		for _, tok := range append(append([]string{}, p.LHSData...), p.LHSAnnots...) {
			it, found := dict.Lookup(tok)
			if !found {
				ok = false
				break
			}
			lhs = append(lhs, it)
		}
		rhs, found := dict.Lookup(p.RHS)
		if !ok || !found || !rhs.IsAnnotation() {
			continue
		}
		ps = append(ps, planted{lhs: itemset.New(lhs...), rhs: rhs})
	}
	for len(batch) < m {
		if len(ps) > 0 && g.rng.Float64() < reinforce {
			p := ps[g.rng.Intn(len(ps))]
			// Rejection-sample a tuple containing the LHS without the RHS.
			placed := false
			for try := 0; try < 20; try++ {
				idx := g.rng.Intn(rel.Len())
				tu, err := rel.Tuple(idx)
				if err != nil {
					return nil, err
				}
				if tu.Contains(p.lhs) && !tu.Annots.Contains(p.rhs) {
					batch = append(batch, relation.AnnotationUpdate{Index: idx, Annotation: p.rhs})
					placed = true
					break
				}
			}
			if placed {
				continue
			}
		}
		// Random attachment.
		a := 1 + g.rng.Intn(maxInt(1, g.spec.Annotations))
		it, err := dict.InternAnnotation("Annot_" + strconv.Itoa(a))
		if err != nil {
			return nil, err
		}
		batch = append(batch, relation.AnnotationUpdate{Index: g.rng.Intn(rel.Len()), Annotation: it})
	}
	return batch, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
