package workload

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"annotadb/internal/itemset"
	"annotadb/internal/relation"
)

// TokenTuple is one generated tuple in token form — the shape POST /tuples
// accepts and the Figure 4 text format stores (data values first, then
// annotation tokens).
type TokenTuple struct {
	// Values are the tuple's data-value tokens.
	Values []string
	// Annotations are the tuple's annotation tokens.
	Annotations []string
}

// TokenUpdate attaches Annotation to the zero-based tuple position Tuple —
// the shape POST /annotations accepts.
type TokenUpdate struct {
	// Tuple is the zero-based position of the target tuple.
	Tuple int
	// Annotation is the annotation token to attach.
	Annotation string
}

// Stream is a deterministic token-form traffic source for the macro load
// harness: Base builds the corpus a server is seeded with, and Tuples and
// Annotations sample endless write batches from the same distribution.
// Every method's output is deterministic in the constructor seed and the
// call sequence, so a load run (and its golden files) reproduce
// byte-for-byte from (corpus, seed).
type Stream interface {
	// Name identifies the corpus family in reports and golden files.
	Name() string
	// IsAnnotation classifies one token of this corpus, for the text
	// dataset format whose storage classifier is pluggable
	// (storage.Options.Classifier).
	IsAnnotation(token string) bool
	// Base samples the n-tuple seed corpus.
	Base(n int) []TokenTuple
	// Tuples samples an n-tuple POST /tuples batch.
	Tuples(n int) []TokenTuple
	// Annotations samples an n-update POST /annotations batch over tuple
	// positions [0, relLen).
	Annotations(n, relLen int) []TokenUpdate
}

// NewStream constructs the named corpus stream: "paper" (the Figure 4/14
// Annot_k shape at the paper's scale), "metrics" (metric×container
// observability families), or "linguistic" (a Cassidy-&-Bird-style
// annotated speech corpus).
func NewStream(corpus string, seed int64) (Stream, error) {
	switch corpus {
	case "", "paper":
		return NewPaperStream(Default8K(seed))
	case "metrics":
		return NewMetricsStream(seed), nil
	case "linguistic":
		return NewLinguisticStream(seed), nil
	default:
		return nil, fmt.Errorf("workload: unknown corpus %q (want paper, metrics, or linguistic)", corpus)
	}
}

// BuildRelation interns token tuples into a fresh relation, in order.
func BuildRelation(tuples []TokenTuple) (*relation.Relation, error) {
	rel := relation.New()
	dict := rel.Dictionary()
	batch := make([]relation.Tuple, 0, len(tuples))
	for i, t := range tuples {
		items := make([]itemset.Item, 0, len(t.Values)+len(t.Annotations))
		for _, tok := range t.Values {
			it, err := dict.InternData(tok)
			if err != nil {
				return nil, fmt.Errorf("workload: tuple %d: %w", i, err)
			}
			items = append(items, it)
		}
		for _, tok := range t.Annotations {
			it, err := dict.InternAnnotation(tok)
			if err != nil {
				return nil, fmt.Errorf("workload: tuple %d: %w", i, err)
			}
			items = append(items, it)
		}
		batch = append(batch, relation.NewTuple(items...))
	}
	rel.Append(batch...)
	return rel, nil
}

// PaperStream adapts the Figure 4 Generator to the Stream interface: the
// paper's Annot_k vocabulary with Default8K's planted correlations, in
// token form.
type PaperStream struct {
	spec Spec
	gen  *Generator
	// dict interns generated tuples so they can be rendered back to
	// tokens; it never leaves the stream.
	dict *relation.Relation
	rng  *rand.Rand
}

// NewPaperStream wraps a Figure 4 generator spec as a token stream.
func NewPaperStream(spec Spec) (*PaperStream, error) {
	gen, err := NewGenerator(spec)
	if err != nil {
		return nil, err
	}
	return &PaperStream{
		spec: spec,
		gen:  gen,
		dict: relation.New(),
		rng:  rand.New(rand.NewSource(spec.Seed + 1)),
	}, nil
}

// Name implements Stream.
func (p *PaperStream) Name() string { return "paper" }

// IsAnnotation implements Stream: the paper's Annot_ prefix convention.
func (p *PaperStream) IsAnnotation(token string) bool {
	return strings.HasPrefix(token, "Annot_")
}

// Base implements Stream.
func (p *PaperStream) Base(n int) []TokenTuple { return p.sample(n, true) }

// Tuples implements Stream.
func (p *PaperStream) Tuples(n int) []TokenTuple { return p.sample(n, true) }

func (p *PaperStream) sample(n int, annotated bool) []TokenTuple {
	d := p.dict.Dictionary()
	var tuples []relation.Tuple
	var err error
	if annotated {
		tuples, err = p.gen.AnnotatedTuples(d, n)
	} else {
		tuples, err = p.gen.UnannotatedTuples(d, n)
	}
	if err != nil {
		// The only intern failures are kind conflicts, which a
		// single-writer stream over its own dictionary cannot produce.
		panic(err)
	}
	out := make([]TokenTuple, len(tuples))
	for i, tu := range tuples {
		out[i] = TokenTuple{Values: d.Tokens(tu.Data), Annotations: d.Tokens(tu.Annots)}
	}
	return out
}

// Annotations implements Stream: random Annot_k attachments over the
// relation, the shape of the paper's Figure 14 batches.
func (p *PaperStream) Annotations(n, relLen int) []TokenUpdate {
	if relLen <= 0 || n <= 0 {
		return nil
	}
	out := make([]TokenUpdate, n)
	for i := range out {
		out[i] = TokenUpdate{
			Tuple:      p.rng.Intn(relLen),
			Annotation: "Annot_" + strconv.Itoa(1+p.rng.Intn(maxInt(1, p.spec.Annotations))),
		}
	}
	return out
}

// MetricsStream generates a metric×container observability corpus in the
// spirit of datadog-style correlation discovery: each tuple is one
// container observation (host, container, image data values) carrying
// threshold-crossing annotations in family:state form (cpu:high,
// mem:high, oom:kill, …). The ":" family prefixes make the corpus
// shard-friendly — the server partitions the write path by exactly that
// prefix — and the planted correlations span both rule kinds:
//
//   - img=i0 ⇒ cpu:high (data → annotation): one image is a CPU hog.
//   - cpu:high ⇒ sched:throttle (annotation → annotation): hot containers
//     get throttled.
//   - mem:high ⇒ oom:kill (annotation → annotation): memory pressure
//     kills.
//
// All sampling is deterministic in the seed.
type MetricsStream struct {
	rng        *rand.Rand
	hosts      int
	containers int
	images     int
}

// NewMetricsStream returns a metrics corpus stream deterministic in seed.
func NewMetricsStream(seed int64) *MetricsStream {
	return &MetricsStream{
		rng:        rand.New(rand.NewSource(seed)),
		hosts:      16,
		containers: 48,
		images:     8,
	}
}

// metricsNoise are the noise annotation tokens with their per-tuple attach
// probability: background alerting unrelated to the planted correlations.
var metricsNoise = []struct {
	token string
	p     float64
}{
	{"net:sat", 0.06},
	{"disk:full", 0.04},
	{"io:slow", 0.08},
	{"restart:loop", 0.03},
	{"mem:high", 0.30}, // the mem:high ⇒ oom:kill LHS arrives as noise
}

// Name implements Stream.
func (m *MetricsStream) Name() string { return "metrics" }

// IsAnnotation implements Stream: annotations are family:state tokens;
// data values are key=value tokens and never contain a colon.
func (m *MetricsStream) IsAnnotation(token string) bool {
	return strings.Contains(token, ":")
}

// Base implements Stream.
func (m *MetricsStream) Base(n int) []TokenTuple { return m.Tuples(n) }

// Tuples implements Stream.
func (m *MetricsStream) Tuples(n int) []TokenTuple {
	out := make([]TokenTuple, n)
	for i := range out {
		ctr := m.rng.Intn(m.containers)
		img := ctr % m.images
		values := []string{
			"host=h" + strconv.Itoa(m.rng.Intn(m.hosts)),
			"ctr=c" + strconv.Itoa(ctr),
			"img=i" + strconv.Itoa(img),
		}
		var annots []string
		attach := func(tok string) {
			for _, a := range annots {
				if a == tok {
					return
				}
			}
			annots = append(annots, tok)
		}
		// Planted: the hog image runs hot (support comes from img=i0's
		// 1/images share of tuples; confidence 0.9).
		if img == 0 && m.rng.Float64() < 0.9 {
			attach("cpu:high")
		}
		// Background cpu:high on other images keeps the rule's LHS from
		// being a perfect predictor of the image.
		if img != 0 && m.rng.Float64() < 0.05 {
			attach("cpu:high")
		}
		for _, nz := range metricsNoise {
			if m.rng.Float64() < nz.p {
				attach(nz.token)
			}
		}
		// Planted annotation→annotation implications, applied after the
		// LHS draws so confidence is conditional as measured.
		if contains(annots, "cpu:high") && m.rng.Float64() < 0.85 {
			attach("sched:throttle")
		}
		if contains(annots, "mem:high") && m.rng.Float64() < 0.8 {
			attach("oom:kill")
		}
		out[i] = TokenTuple{Values: values, Annotations: annots}
	}
	return out
}

// Annotations implements Stream: alert churn — random family:state
// attachments over live tuples, weighted toward the planted families so
// incremental maintenance sees promotions, not just noise.
func (m *MetricsStream) Annotations(n, relLen int) []TokenUpdate {
	if relLen <= 0 || n <= 0 {
		return nil
	}
	vocab := []string{
		"cpu:high", "mem:high", "oom:kill", "sched:throttle",
		"net:sat", "disk:full", "io:slow", "restart:loop",
	}
	out := make([]TokenUpdate, n)
	for i := range out {
		out[i] = TokenUpdate{
			Tuple:      m.rng.Intn(relLen),
			Annotation: vocab[m.rng.Intn(len(vocab))],
		}
	}
	return out
}

// LinguisticStream generates an annotated speech corpus after Cassidy &
// Bird ("Querying Databases of Annotated Speech"): each tuple is one word
// token with its speaker and document as data values, and layered
// annotations in family:label form — part of speech (pos:), syntactic
// chunk (syn:), phonological prominence (phon:), and discourse role
// (disc:). The planted correlations mirror real annotation-layer
// dependencies:
//
//   - each word ⇒ its pos: tag (data → annotation, confidence 0.92),
//   - pos:det ⇒ syn:np (annotation → annotation: determiners open noun
//     phrases, confidence 0.85),
//   - filler words ⇒ disc:filler (data → annotation, confidence 0.8).
//
// All sampling is deterministic in the seed.
type LinguisticStream struct {
	rng      *rand.Rand
	speakers int
	docs     int
}

// NewLinguisticStream returns a linguistic corpus stream deterministic in
// seed.
func NewLinguisticStream(seed int64) *LinguisticStream {
	return &LinguisticStream{
		rng:      rand.New(rand.NewSource(seed)),
		speakers: 8,
		docs:     12,
	}
}

// lingWords is the corpus vocabulary with gold part-of-speech tags. The
// repetition of frequent function words gives the Zipf-ish skew real
// transcripts have.
var lingWords = []struct {
	word string
	pos  string
}{
	{"the", "det"}, {"the", "det"}, {"the", "det"}, {"a", "det"}, {"a", "det"},
	{"and", "conj"}, {"and", "conj"}, {"but", "conj"},
	{"i", "pron"}, {"i", "pron"}, {"you", "pron"}, {"it", "pron"},
	{"is", "verb"}, {"was", "verb"}, {"said", "verb"}, {"went", "verb"},
	{"see", "verb"}, {"know", "verb"}, {"think", "verb"},
	{"cat", "noun"}, {"dog", "noun"}, {"house", "noun"}, {"water", "noun"},
	{"road", "noun"}, {"day", "noun"}, {"time", "noun"}, {"people", "noun"},
	{"big", "adj"}, {"small", "adj"}, {"old", "adj"}, {"good", "adj"},
	{"quickly", "adv"}, {"here", "adv"}, {"now", "adv"},
	{"um", "filler"}, {"uh", "filler"}, {"like", "filler"},
}

// Name implements Stream.
func (l *LinguisticStream) Name() string { return "linguistic" }

// IsAnnotation implements Stream: annotation layers are family:label
// tokens; word and key=value data tokens never contain a colon.
func (l *LinguisticStream) IsAnnotation(token string) bool {
	return strings.Contains(token, ":")
}

// Base implements Stream.
func (l *LinguisticStream) Base(n int) []TokenTuple { return l.Tuples(n) }

// Tuples implements Stream.
func (l *LinguisticStream) Tuples(n int) []TokenTuple {
	out := make([]TokenTuple, n)
	for i := range out {
		w := lingWords[l.rng.Intn(len(lingWords))]
		values := []string{
			w.word,
			"spk=s" + strconv.Itoa(l.rng.Intn(l.speakers)),
			"doc=d" + strconv.Itoa(l.rng.Intn(l.docs)),
		}
		var annots []string
		attach := func(tok string) {
			for _, a := range annots {
				if a == tok {
					return
				}
			}
			annots = append(annots, tok)
		}
		// The pos layer: near-gold tagging with a little tagger noise.
		if l.rng.Float64() < 0.92 {
			attach("pos:" + w.pos)
		} else {
			attach("pos:" + lingWords[l.rng.Intn(len(lingWords))].pos)
		}
		// The syn layer depends on the pos layer.
		if contains(annots, "pos:det") || contains(annots, "pos:adj") {
			if l.rng.Float64() < 0.85 {
				attach("syn:np")
			}
		} else if contains(annots, "pos:noun") && l.rng.Float64() < 0.6 {
			attach("syn:np")
		} else if contains(annots, "pos:verb") && l.rng.Float64() < 0.65 {
			attach("syn:vp")
		}
		// Prosodic prominence: content words carry stress more often.
		stress := 0.12
		if w.pos == "noun" || w.pos == "verb" || w.pos == "adj" {
			stress = 0.45
		}
		if l.rng.Float64() < stress {
			attach("phon:stress")
		}
		// Discourse layer: fillers are marked as such.
		if w.pos == "filler" && l.rng.Float64() < 0.8 {
			attach("disc:filler")
		}
		out[i] = TokenTuple{Values: values, Annotations: annots}
	}
	return out
}

// Annotations implements Stream: a second annotation pass over the corpus
// (the Cassidy & Bird model is layered annotation added over time), mixing
// syn/phon/disc labels over random word tokens.
func (l *LinguisticStream) Annotations(n, relLen int) []TokenUpdate {
	if relLen <= 0 || n <= 0 {
		return nil
	}
	vocab := []string{
		"syn:np", "syn:vp", "syn:pp", "phon:stress", "phon:pause",
		"disc:filler", "disc:repair",
	}
	out := make([]TokenUpdate, n)
	for i := range out {
		out[i] = TokenUpdate{
			Tuple:      l.rng.Intn(relLen),
			Annotation: vocab[l.rng.Intn(len(vocab))],
		}
	}
	return out
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}
