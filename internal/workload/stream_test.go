package workload

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"annotadb/internal/storage"
)

// update regenerates the golden corpus files instead of comparing against
// them: go test ./internal/workload -run Golden -update
var update = flag.Bool("update", false, "rewrite golden corpus files")

const goldenTuples = 64

// streamCorpora are the corpus names every Stream test covers.
var streamCorpora = []string{"paper", "metrics", "linguistic"}

// TestStreamDeterminism proves byte-for-byte reproducibility: two streams
// built from the same (corpus, seed) produce identical bases, tuple
// batches, and annotation batches — the property grid runs rely on.
func TestStreamDeterminism(t *testing.T) {
	for _, corpus := range streamCorpora {
		t.Run(corpus, func(t *testing.T) {
			a, err := NewStream(corpus, 7)
			if err != nil {
				t.Fatal(err)
			}
			b, err := NewStream(corpus, 7)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a.Base(50), b.Base(50)) {
				t.Fatal("Base differs between identically seeded streams")
			}
			if !reflect.DeepEqual(a.Tuples(20), b.Tuples(20)) {
				t.Fatal("Tuples differs between identically seeded streams")
			}
			if !reflect.DeepEqual(a.Annotations(30, 50), b.Annotations(30, 50)) {
				t.Fatal("Annotations differs between identically seeded streams")
			}
			c, err := NewStream(corpus, 8)
			if err != nil {
				t.Fatal(err)
			}
			if reflect.DeepEqual(a.Tuples(20), c.Tuples(20)) {
				t.Fatal("different seeds produced identical batches")
			}
		})
	}
}

// TestStreamShapes checks corpus invariants the load harness and the
// sharded server depend on: annotations classify as annotations, data
// values do not, and every generated tuple has at least one data value
// (the text format rejects data-less tuples by default).
func TestStreamShapes(t *testing.T) {
	for _, corpus := range streamCorpora {
		t.Run(corpus, func(t *testing.T) {
			s, err := NewStream(corpus, 3)
			if err != nil {
				t.Fatal(err)
			}
			for _, tu := range s.Base(200) {
				if len(tu.Values) == 0 {
					t.Fatal("tuple with no data values")
				}
				for _, v := range tu.Values {
					if s.IsAnnotation(v) {
						t.Fatalf("data value %q classifies as an annotation", v)
					}
				}
				for _, a := range tu.Annotations {
					if !s.IsAnnotation(a) {
						t.Fatalf("annotation %q classifies as a data value", a)
					}
				}
			}
			for _, u := range s.Annotations(100, 200) {
				if u.Tuple < 0 || u.Tuple >= 200 {
					t.Fatalf("annotation update index %d out of [0,200)", u.Tuple)
				}
				if !s.IsAnnotation(u.Annotation) {
					t.Fatalf("update annotation %q classifies as a data value", u.Annotation)
				}
			}
		})
	}
}

// TestGoldenRoundTrip renders each corpus's seed-1 base through the
// Figure 4 text format and compares it byte-for-byte against the committed
// golden file, then reads the text back and re-renders it to prove the
// format round-trips multi-family annotation tokens exactly.
func TestGoldenRoundTrip(t *testing.T) {
	for _, corpus := range streamCorpora {
		t.Run(corpus, func(t *testing.T) {
			s, err := NewStream(corpus, 1)
			if err != nil {
				t.Fatal(err)
			}
			rel, err := BuildRelation(s.Base(goldenTuples))
			if err != nil {
				t.Fatal(err)
			}
			opts := storage.Options{Classifier: s.IsAnnotation}
			var rendered bytes.Buffer
			if err := storage.WriteDataset(&rendered, rel, opts); err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata", "golden_"+corpus+".txt")
			if *update {
				if err := os.WriteFile(golden, rendered.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if !bytes.Equal(rendered.Bytes(), want) {
				t.Fatalf("%s corpus diverged from golden file %s: generation is no longer reproducible (run with -update if the change is intentional)", corpus, golden)
			}
			reread, err := storage.ReadDataset(bytes.NewReader(want), opts)
			if err != nil {
				t.Fatal(err)
			}
			var rerendered bytes.Buffer
			if err := storage.WriteDataset(&rerendered, reread, opts); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(rerendered.Bytes(), want) {
				t.Fatalf("%s corpus does not round-trip through the text format", corpus)
			}
		})
	}
}
