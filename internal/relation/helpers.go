package relation

import "annotadb/internal/itemset"

// MustTuple interns the given tokens and builds a tuple. It panics on intern
// failure and exists for tests and examples where the tokens are literals.
func MustTuple(dict *Dictionary, data []string, annots []string) Tuple {
	items := make([]itemset.Item, 0, len(data)+len(annots))
	for _, tok := range data {
		it, err := dict.InternData(tok)
		if err != nil {
			panic(err)
		}
		items = append(items, it)
	}
	for _, tok := range annots {
		it, err := dict.InternAnnotation(tok)
		if err != nil {
			panic(err)
		}
		items = append(items, it)
	}
	return NewTuple(items...)
}

// MustAnnotation interns token as a raw annotation, panicking on failure.
func MustAnnotation(dict *Dictionary, token string) itemset.Item {
	it, err := dict.InternAnnotation(token)
	if err != nil {
		panic(err)
	}
	return it
}

// MustData interns token as a data value, panicking on failure.
func MustData(dict *Dictionary, token string) itemset.Item {
	it, err := dict.InternData(token)
	if err != nil {
		panic(err)
	}
	return it
}

// FromTokens builds a relation from token matrices: row i carries data
// values data[i] and annotations annots[i] (annots may be shorter than data;
// missing rows mean "no annotations"). It is the quickest way to set up
// fixtures in tests and examples.
func FromTokens(data [][]string, annots [][]string) *Relation {
	r := New()
	for i := range data {
		var a []string
		if i < len(annots) {
			a = annots[i]
		}
		r.Append(MustTuple(r.Dictionary(), data[i], a))
	}
	return r
}
