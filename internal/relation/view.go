package relation

import (
	"fmt"
	"sort"

	"annotadb/internal/itemset"
)

// Chunk geometry of the tuple store. Tuples live in fixed-size chunks so
// that a generation can be captured by sharing the chunk spine: a mutation
// copies only the chunks it touches (plus the spine and the index/frequency
// map headers, once per generation), never the whole relation.
const (
	chunkShift = 9
	chunkSize  = 1 << chunkShift
	chunkMask  = chunkSize - 1
)

// store is the chunked representation of an annotated relation: the tuples,
// the inverted annotation index, the annotation frequency table, and the
// mutation version. It is shared by Relation (which mutates it copy-on-write
// behind a lock) and View (which freezes one generation of it). store
// methods are pure reads; synchronization is the embedding type's concern.
type store struct {
	chunks  [][]Tuple
	n       int
	index   map[itemset.Item][]int // annotation → ascending tuple positions
	freq    map[itemset.Item]int   // annotation → tuple count
	version uint64
}

func (st *store) tuple(i int) Tuple {
	return st.chunks[i>>chunkShift][i&chunkMask]
}

func (st *store) tupleChecked(i int) (Tuple, error) {
	if i < 0 || i >= st.n {
		return Tuple{}, fmt.Errorf("%w: %d (relation has %d tuples)", ErrTupleIndex, i, st.n)
	}
	return st.tuple(i), nil
}

func (st *store) each(start int, fn func(i int, t Tuple) bool) {
	if start < 0 {
		start = 0
	}
	for c := start >> chunkShift; c < len(st.chunks); c++ {
		ch := st.chunks[c]
		base := c << chunkShift
		off := 0
		if base < start {
			off = start - base
		}
		for ; off < len(ch); off++ {
			i := base + off
			if i >= st.n {
				return
			}
			if !fn(i, ch[off]) {
				return
			}
		}
	}
}

func (st *store) countPattern(pattern itemset.Itemset, positions []int) int {
	n := 0
	if positions == nil {
		st.each(0, func(_ int, t Tuple) bool {
			if t.Contains(pattern) {
				n++
			}
			return true
		})
		return n
	}
	for _, i := range positions {
		if i >= 0 && i < st.n && st.tuple(i).Contains(pattern) {
			n++
		}
	}
	return n
}

func (st *store) annotations() itemset.Itemset {
	out := make([]itemset.Item, 0, len(st.freq))
	for a, n := range st.freq {
		if n > 0 {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return itemset.FromSorted(out)
}

func (st *store) freqTable() map[itemset.Item]int {
	out := make(map[itemset.Item]int, len(st.freq))
	for a, n := range st.freq {
		out[a] = n
	}
	return out
}

func (st *store) stats() Stats {
	var s Stats
	s.Tuples = st.n
	dataSeen := make(map[itemset.Item]struct{})
	st.each(0, func(_ int, t Tuple) bool {
		if len(t.Annots) > 0 {
			s.AnnotatedTuples++
		}
		s.Annotations += len(t.Annots)
		if len(t.Annots) > s.MaxAnnotsPerTuple {
			s.MaxAnnotsPerTuple = len(t.Annots)
		}
		for _, d := range t.Data {
			dataSeen[d] = struct{}{}
		}
		return true
	})
	for _, n := range st.freq {
		if n > 0 {
			s.DistinctAnnots++
		}
	}
	s.DistinctData = len(dataSeen)
	return s
}

// Source is the read-only face of an annotated relation: everything a
// consumer needs to evaluate rules or serialize tuples, with no way to
// mutate. *Relation satisfies it with locked live reads; *View satisfies it
// lock-free over one frozen generation. Code that only reads — the
// recommendation scanner, the checkpoint writer — should accept a Source so
// it can be pointed at either.
type Source interface {
	// Dictionary returns the token dictionary the tuples are encoded under.
	Dictionary() *Dictionary
	// Len returns the number of tuples.
	Len() int
	// Tuple returns the tuple at position i, or ErrTupleIndex.
	Tuple(i int) (Tuple, error)
	// Each visits every tuple position in order until fn returns false.
	Each(fn func(i int, t Tuple) bool)
	// EachFrom behaves like Each but starts at position start.
	EachFrom(start int, fn func(i int, t Tuple) bool)
}

var (
	_ Source = (*Relation)(nil)
	_ Source = (*View)(nil)
)

// View is one immutable generation of a Relation: the tuples, inverted
// annotation index, and frequency table exactly as they stood when
// Relation.View captured it. A View is safe for any number of concurrent
// readers with no synchronization — nothing reachable from it is ever
// written again — and holding one costs O(1): generations share unchanged
// chunks structurally, so k generations of an n-tuple relation cost
// O(n + k·delta), not O(k·n).
//
// The serving layer publishes a View inside every snapshot so that a reader
// sees tuple contents and the rule set from the same generation; the
// checkpoint writer serializes a pinned View so the relation stays mutable
// (and unlocked) for the whole write.
type View struct {
	dict *Dictionary
	st   store
}

// Dictionary returns the token dictionary backing the view. The dictionary
// is shared with the live relation and append-only: tokens visible to this
// view never change, though newer tokens may exist alongside it.
func (v *View) Dictionary() *Dictionary { return v.dict }

// Len returns the number of tuples in this generation.
func (v *View) Len() int { return v.st.n }

// Version returns the relation mutation counter this generation was
// captured at. The staleness of a view is the live relation's Version minus
// this value.
func (v *View) Version() uint64 { return v.st.version }

// Tuple returns the tuple at position i as of this generation. The returned
// value shares the view's backing arrays and must be treated as read-only.
func (v *View) Tuple(i int) (Tuple, error) { return v.st.tupleChecked(i) }

// Each calls fn for every tuple position in order until fn returns false.
func (v *View) Each(fn func(i int, t Tuple) bool) { v.st.each(0, fn) }

// EachFrom behaves like Each but starts at position start.
func (v *View) EachFrom(start int, fn func(i int, t Tuple) bool) { v.st.each(start, fn) }

// TuplesWith returns the ascending positions of tuples carrying annotation a
// in this generation. The slice is frozen; callers must not modify it.
func (v *View) TuplesWith(a itemset.Item) []int { return v.st.index[a] }

// Frequency returns the number of tuples carrying annotation a.
func (v *View) Frequency(a itemset.Item) int { return v.st.freq[a] }

// FrequencyTable returns a copy of the annotation frequency table.
func (v *View) FrequencyTable() map[itemset.Item]int { return v.st.freqTable() }

// Annotations returns every annotation present on at least one tuple, sorted.
func (v *View) Annotations() itemset.Itemset { return v.st.annotations() }

// CountPattern counts tuples containing pattern, over positions (or the
// whole generation when positions is nil).
func (v *View) CountPattern(pattern itemset.Itemset, positions []int) int {
	return v.st.countPattern(pattern, positions)
}

// Stats computes summary statistics for this generation in one pass.
func (v *View) Stats() Stats { return v.st.stats() }
