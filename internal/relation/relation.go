package relation

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"annotadb/internal/itemset"
)

// Tuple is one row of an annotated relation (Def. 4.1): a set of data values
// plus a variable-size set of attached annotations. Both parts are canonical
// itemsets. The paper's Figure 4 dataset stores values as IDs because "the
// association rules would be the same regardless" of the true values; the
// dictionary preserves the external spelling.
type Tuple struct {
	Data   itemset.Itemset // data-value items, sorted
	Annots itemset.Itemset // annotation items (raw + derived), sorted
}

// NewTuple canonicalizes and partitions items into a tuple. Items carry
// their own kind tags, so a single mixed slice is sufficient.
func NewTuple(items ...itemset.Item) Tuple {
	all := itemset.New(items...)
	data, annots := all.Split()
	return Tuple{Data: data.Clone(), Annots: annots.Clone()}
}

// Items returns the merged itemset of data values and annotations.
// Data values sort before annotations, so the merge is a concatenation.
func (t Tuple) Items() itemset.Itemset {
	if len(t.Annots) == 0 {
		return t.Data
	}
	if len(t.Data) == 0 {
		return t.Annots
	}
	out := make(itemset.Itemset, 0, len(t.Data)+len(t.Annots))
	out = append(out, t.Data...)
	out = append(out, t.Annots...)
	return out
}

// HasAnnotation reports whether annotation a is attached to the tuple.
func (t Tuple) HasAnnotation(a itemset.Item) bool { return t.Annots.Contains(a) }

// Contains reports whether every item of pattern appears in the tuple.
func (t Tuple) Contains(pattern itemset.Itemset) bool {
	data, annots := pattern.Split()
	return t.Data.ContainsAll(data) && t.Annots.ContainsAll(annots)
}

// Clone returns an independent deep copy.
func (t Tuple) Clone() Tuple {
	return Tuple{Data: t.Data.Clone(), Annots: t.Annots.Clone()}
}

// Annotated reports whether the tuple carries at least one annotation.
func (t Tuple) Annotated() bool { return len(t.Annots) > 0 }

// ErrTupleIndex reports an out-of-range tuple index in an update batch.
var ErrTupleIndex = errors.New("relation: tuple index out of range")

// ErrDuplicateAnnotation reports an attempt to attach an annotation a tuple
// already carries. The paper notes "a data tuple can have a given label at
// most once"; the same invariant is enforced for raw annotations.
var ErrDuplicateAnnotation = errors.New("relation: annotation already present on tuple")

// ErrAnnotationNotPresent reports an attempt to detach an annotation the
// tuple does not carry.
var ErrAnnotationNotPresent = errors.New("relation: annotation not present on tuple")

// AnnotationUpdate is one line of a Figure 14 update batch: attach
// Annotation to the tuple at (zero-based) Index.
type AnnotationUpdate struct {
	Index      int
	Annotation itemset.Item
}

// Relation is an in-memory annotated relation with the auxiliary structures
// required by the incremental maintenance engine:
//
//   - an inverted annotation index: annotation → sorted tuple positions;
//   - a frequency table counting tuples per annotation (not occurrences —
//     an annotation appears at most once per tuple);
//   - a monotonically increasing version number, bumped on every mutation,
//     that lets downstream caches detect staleness.
//
// Storage is chunked and copy-on-write: View captures the current
// generation as an immutable *View in O(1), and subsequent mutations copy
// only the chunks, postings, and map headers they touch, so generations
// share structure. Mutation cost is O(delta) in the batch size plus an
// O(chunks + annotations) once-per-generation bookkeeping term.
//
// All methods are safe for concurrent use. Read methods hand out internal
// slices; callers must treat them as read-only.
type Relation struct {
	mu   sync.RWMutex
	dict *Dictionary
	st   store

	// view memoizes the current generation between mutations; capturing it
	// seals the store (epoch bump), and the next mutation copies what it
	// touches instead of writing memory the view can reach.
	view  *View
	epoch uint64

	// Ownership generations: a structure may be written in place only when
	// its generation matches epoch; otherwise it is (or may be) shared with
	// a captured view and must be copied first.
	spineGen uint64                  // chunk spine ([][]Tuple header array)
	mapsGen  uint64                  // index and freq map headers
	chunkGen []uint64                // per-chunk backing array
	postGen  map[itemset.Item]uint64 // per-annotation postings backing array
}

// New creates an empty relation backed by a fresh dictionary.
func New() *Relation { return NewWithDictionary(NewDictionary()) }

// NewWithDictionary creates an empty relation sharing dict. Sharing lets a
// workload generator and the relation agree on token encoding.
func NewWithDictionary(dict *Dictionary) *Relation {
	if dict == nil {
		dict = NewDictionary()
	}
	return &Relation{
		dict: dict,
		st: store{
			index: make(map[itemset.Item][]int),
			freq:  make(map[itemset.Item]int),
		},
		epoch:    1,
		spineGen: 1,
		mapsGen:  1,
		postGen:  make(map[itemset.Item]uint64),
	}
}

// Dictionary returns the token dictionary backing the relation.
func (r *Relation) Dictionary() *Dictionary { return r.dict }

// Len returns the number of tuples (the |D| denominator of rule support).
func (r *Relation) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.st.n
}

// Version returns the mutation counter.
func (r *Relation) Version() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.st.version
}

// View captures the current generation as an immutable View in O(1). The
// view is memoized: between mutations, repeated calls return the same
// pointer. Capturing seals the live store — the next mutation pays a
// copy-on-write of whatever it touches — so views are cheap to take per
// batch but not free to take per tuple.
func (r *Relation) View() *View {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.viewLocked()
}

func (r *Relation) viewLocked() *View {
	if r.view == nil {
		r.view = &View{dict: r.dict, st: r.st}
		r.epoch++
	}
	return r.view
}

// beginMutation invalidates the memoized view and un-shares the structures
// every mutation touches: the chunk spine and the index/frequency map
// headers. Individual chunks and postings are un-shared lazily by
// writableChunk and writablePostings. Callers must hold the write lock.
func (r *Relation) beginMutation() {
	r.view = nil
	if r.spineGen != r.epoch {
		spine := make([][]Tuple, len(r.st.chunks), len(r.st.chunks)+1)
		copy(spine, r.st.chunks)
		r.st.chunks = spine
		r.spineGen = r.epoch
	}
	if r.mapsGen != r.epoch {
		index := make(map[itemset.Item][]int, len(r.st.index))
		for a, p := range r.st.index {
			index[a] = p
		}
		freq := make(map[itemset.Item]int, len(r.st.freq))
		for a, n := range r.st.freq {
			freq[a] = n
		}
		r.st.index, r.st.freq = index, freq
		r.mapsGen = r.epoch
	}
}

// writableChunk returns chunk c, copied first if a captured view may still
// reference its backing array.
func (r *Relation) writableChunk(c int) []Tuple {
	if r.chunkGen[c] != r.epoch {
		old := r.st.chunks[c]
		fresh := make([]Tuple, len(old), chunkSize)
		copy(fresh, old)
		r.st.chunks[c] = fresh
		r.chunkGen[c] = r.epoch
	}
	return r.st.chunks[c]
}

// writablePostings returns the postings slice for a, copied first if a
// captured view may still reference it. The caller must store the slice
// back into the index after appending.
func (r *Relation) writablePostings(a itemset.Item) []int {
	if r.postGen[a] == r.epoch {
		return r.st.index[a]
	}
	old := r.st.index[a]
	fresh := make([]int, len(old), len(old)+4)
	copy(fresh, old)
	r.st.index[a] = fresh
	r.postGen[a] = r.epoch
	return fresh
}

// attach attaches a to tuple i, maintaining the index and frequency table.
// The caller has validated the update and called beginMutation.
func (r *Relation) attach(i int, a itemset.Item) {
	ch := r.writableChunk(i >> chunkShift)
	t := &ch[i&chunkMask]
	t.Annots = t.Annots.Add(a)
	p := r.writablePostings(a)
	at := sort.SearchInts(p, i)
	p = append(p, 0)
	copy(p[at+1:], p[at:])
	p[at] = i
	r.st.index[a] = p
	r.st.freq[a]++
}

// detach removes a from tuple i, maintaining the index and frequency table.
// The caller has validated the update and called beginMutation.
func (r *Relation) detach(i int, a itemset.Item) {
	ch := r.writableChunk(i >> chunkShift)
	t := &ch[i&chunkMask]
	t.Annots = t.Annots.Remove(a)
	p := r.writablePostings(a)
	at := sort.SearchInts(p, i)
	if at < len(p) && p[at] == i {
		p = append(p[:at], p[at+1:]...)
		if len(p) == 0 {
			delete(r.st.index, a)
		} else {
			r.st.index[a] = p
		}
	}
	r.st.freq[a]--
}

// Tuple returns the tuple at position i. The returned value shares backing
// arrays with the relation and must be treated as read-only.
func (r *Relation) Tuple(i int) (Tuple, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.st.tupleChecked(i)
}

// Each calls fn for every tuple position in order while holding a read lock.
// fn must not mutate the relation, and must not retain the tuple.
func (r *Relation) Each(fn func(i int, t Tuple) bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	r.st.each(0, fn)
}

// EachFrom behaves like Each but starts at position start. The incremental
// engine uses it to visit only newly appended tuples.
func (r *Relation) EachFrom(start int, fn func(i int, t Tuple) bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	r.st.each(start, fn)
}

// Append adds tuples to the end of the relation, maintaining the annotation
// index and frequency table. It returns the position of the first appended
// tuple.
func (r *Relation) Append(tuples ...Tuple) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.beginMutation()
	start := r.st.n
	for _, t := range tuples {
		pos := r.st.n
		c := pos >> chunkShift
		if pos&chunkMask == 0 {
			r.st.chunks = append(r.st.chunks, make([]Tuple, 0, chunkSize))
			r.chunkGen = append(r.chunkGen, r.epoch)
		}
		ch := r.writableChunk(c)
		r.st.chunks[c] = append(ch, t)
		r.st.n++
		for _, a := range t.Annots {
			p := r.writablePostings(a)
			r.st.index[a] = append(p, pos)
			r.st.freq[a]++
		}
	}
	r.st.version++
	return start
}

// AddAnnotation attaches annotation a to the tuple at position i.
// Attaching a duplicate returns ErrDuplicateAnnotation and leaves the
// relation unchanged; an out-of-range index returns ErrTupleIndex.
func (r *Relation) AddAnnotation(i int, a itemset.Item) error {
	if !a.IsAnnotation() {
		return fmt.Errorf("relation: item %v is not an annotation", a)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, err := r.st.tupleChecked(i)
	if err != nil {
		return err
	}
	if t.Annots.Contains(a) {
		return fmt.Errorf("%w: %v on tuple %d", ErrDuplicateAnnotation, a, i)
	}
	r.beginMutation()
	r.attach(i, a)
	r.st.version++
	return nil
}

// ApplyUpdates applies a Figure 14 annotation batch. It validates the whole
// batch against the current relation before mutating anything, so a batch
// either applies completely or not at all (duplicate-annotation entries are
// reported through the returned skipped list rather than failing the batch,
// because real curation batches legitimately re-send annotations).
//
// It returns the updates that were actually applied and the ones skipped as
// duplicates.
func (r *Relation) ApplyUpdates(batch []AnnotationUpdate) (applied, skipped []AnnotationUpdate, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, u := range batch {
		if u.Index < 0 || u.Index >= r.st.n {
			return nil, nil, fmt.Errorf("%w: %d (relation has %d tuples)", ErrTupleIndex, u.Index, r.st.n)
		}
		if !u.Annotation.IsAnnotation() {
			return nil, nil, fmt.Errorf("relation: item %v in update batch is not an annotation", u.Annotation)
		}
	}
	r.beginMutation()
	// Track within-batch duplicates too: the same (tuple, annotation) pair
	// twice in one batch must apply only once.
	type pair struct {
		i int
		a itemset.Item
	}
	seen := make(map[pair]bool, len(batch))
	for _, u := range batch {
		p := pair{u.Index, u.Annotation}
		if seen[p] || r.st.tuple(u.Index).Annots.Contains(u.Annotation) {
			skipped = append(skipped, u)
			continue
		}
		seen[p] = true
		r.attach(u.Index, u.Annotation)
		applied = append(applied, u)
	}
	if len(applied) > 0 {
		r.st.version++
	}
	return applied, skipped, nil
}

// RemoveAnnotation detaches annotation a from the tuple at position i.
// Removing an absent annotation returns ErrAnnotationNotPresent and leaves
// the relation unchanged; an out-of-range index returns ErrTupleIndex.
func (r *Relation) RemoveAnnotation(i int, a itemset.Item) error {
	if !a.IsAnnotation() {
		return fmt.Errorf("relation: item %v is not an annotation", a)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, err := r.st.tupleChecked(i)
	if err != nil {
		return err
	}
	if !t.Annots.Contains(a) {
		return fmt.Errorf("%w: %v on tuple %d", ErrAnnotationNotPresent, a, i)
	}
	r.beginMutation()
	r.detach(i, a)
	r.st.version++
	return nil
}

// ApplyRemovals detaches a batch of annotations, mirroring ApplyUpdates:
// the whole batch is validated against the current relation first, entries
// whose annotation is (no longer) present are skipped rather than failing,
// and within-batch duplicates apply once.
func (r *Relation) ApplyRemovals(batch []AnnotationUpdate) (applied, skipped []AnnotationUpdate, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, u := range batch {
		if u.Index < 0 || u.Index >= r.st.n {
			return nil, nil, fmt.Errorf("%w: %d (relation has %d tuples)", ErrTupleIndex, u.Index, r.st.n)
		}
		if !u.Annotation.IsAnnotation() {
			return nil, nil, fmt.Errorf("relation: item %v in removal batch is not an annotation", u.Annotation)
		}
	}
	r.beginMutation()
	for _, u := range batch {
		if !r.st.tuple(u.Index).Annots.Contains(u.Annotation) {
			skipped = append(skipped, u)
			continue
		}
		r.detach(u.Index, u.Annotation)
		applied = append(applied, u)
	}
	if len(applied) > 0 {
		r.st.version++
	}
	return applied, skipped, nil
}

// TuplesWith returns the ascending positions of tuples carrying annotation a.
// This is the paper's annotation inverted index; the returned slice is shared
// and must not be mutated.
func (r *Relation) TuplesWith(a itemset.Item) []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.st.index[a]
}

// Frequency returns the number of tuples carrying annotation a — the paper's
// annotation frequency table.
func (r *Relation) Frequency(a itemset.Item) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.st.freq[a]
}

// FrequencyTable returns a copy of the whole annotation frequency table.
func (r *Relation) FrequencyTable() map[itemset.Item]int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.st.freqTable()
}

// Annotations returns every annotation item that appears on at least one
// tuple, sorted.
func (r *Relation) Annotations() itemset.Itemset {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.st.annotations()
}

// CountPattern scans positions (or the whole relation when positions is nil)
// and counts tuples containing the pattern. The incremental engine uses the
// positions form with the annotation index to realize the paper's "check all
// data tuples in the database having this annotation" step without a full
// scan.
func (r *Relation) CountPattern(pattern itemset.Itemset, positions []int) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.st.countPattern(pattern, positions)
}

// Clone returns a deep copy of the relation sharing no mutable state with the
// original. The dictionary is shared: token→item mappings are append-only,
// so sharing is safe and keeps clones comparable.
//
// Clone pins a View (O(1) under the lock) and copies from it afterwards, so
// no reader or writer ever waits behind the O(n) copy.
func (r *Relation) Clone() *Relation {
	v := r.View()
	c := NewWithDictionary(r.dict)
	batch := make([]Tuple, 0, v.Len())
	v.Each(func(_ int, t Tuple) bool {
		batch = append(batch, t.Clone())
		return true
	})
	c.Append(batch...)
	c.st.version = v.Version()
	return c
}

// Stats summarizes the relation for reports and examples.
type Stats struct {
	Tuples            int
	AnnotatedTuples   int
	Annotations       int // total attachments (tuple, annotation) pairs
	DistinctAnnots    int
	DistinctData      int
	MaxAnnotsPerTuple int
}

// Stats computes summary statistics in one pass.
func (r *Relation) Stats() Stats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.st.stats()
}

// CheckInvariants verifies the internal consistency of the chunked storage,
// index, and frequency table against the tuples. It is called from tests and
// from the incremental engine's verification mode, never on hot paths.
func (r *Relation) CheckInvariants() error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	total := 0
	for c, ch := range r.st.chunks {
		if c < len(r.st.chunks)-1 && len(ch) != chunkSize {
			return fmt.Errorf("relation: interior chunk %d has %d tuples, want %d", c, len(ch), chunkSize)
		}
		total += len(ch)
	}
	if total != r.st.n {
		return fmt.Errorf("relation: chunks hold %d tuples, store says %d", total, r.st.n)
	}
	rebuiltFreq := make(map[itemset.Item]int)
	rebuiltIdx := make(map[itemset.Item][]int)
	var werr error
	r.st.each(0, func(i int, t Tuple) bool {
		if !t.Data.Wellformed() || !t.Annots.Wellformed() {
			werr = fmt.Errorf("relation: tuple %d not canonical", i)
			return false
		}
		if t.Data.HasAnnotation() {
			werr = fmt.Errorf("relation: tuple %d has annotation in data part", i)
			return false
		}
		if !t.Annots.PureAnnotations() {
			werr = fmt.Errorf("relation: tuple %d has data value in annotation part", i)
			return false
		}
		for _, a := range t.Annots {
			rebuiltFreq[a]++
			rebuiltIdx[a] = append(rebuiltIdx[a], i)
		}
		return true
	})
	if werr != nil {
		return werr
	}
	for a, n := range r.st.freq {
		if n != rebuiltFreq[a] {
			return fmt.Errorf("relation: frequency table says %d tuples for %v, actual %d", n, a, rebuiltFreq[a])
		}
	}
	for a, n := range rebuiltFreq {
		if r.st.freq[a] != n {
			return fmt.Errorf("relation: frequency table missing %v (actual %d)", a, n)
		}
	}
	for a, positions := range r.st.index {
		want := rebuiltIdx[a]
		if len(positions) != len(want) {
			return fmt.Errorf("relation: index for %v has %d entries, want %d", a, len(positions), len(want))
		}
		for i := range positions {
			if positions[i] != want[i] {
				return fmt.Errorf("relation: index for %v diverges at entry %d: %d != %d", a, i, positions[i], want[i])
			}
		}
	}
	for a, want := range rebuiltIdx {
		if _, ok := r.st.index[a]; !ok && len(want) > 0 {
			return fmt.Errorf("relation: index missing annotation %v", a)
		}
	}
	return nil
}
