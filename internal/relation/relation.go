package relation

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"annotadb/internal/itemset"
)

// Tuple is one row of an annotated relation (Def. 4.1): a set of data values
// plus a variable-size set of attached annotations. Both parts are canonical
// itemsets. The paper's Figure 4 dataset stores values as IDs because "the
// association rules would be the same regardless" of the true values; the
// dictionary preserves the external spelling.
type Tuple struct {
	Data   itemset.Itemset // data-value items, sorted
	Annots itemset.Itemset // annotation items (raw + derived), sorted
}

// NewTuple canonicalizes and partitions items into a tuple. Items carry
// their own kind tags, so a single mixed slice is sufficient.
func NewTuple(items ...itemset.Item) Tuple {
	all := itemset.New(items...)
	data, annots := all.Split()
	return Tuple{Data: data.Clone(), Annots: annots.Clone()}
}

// Items returns the merged itemset of data values and annotations.
// Data values sort before annotations, so the merge is a concatenation.
func (t Tuple) Items() itemset.Itemset {
	if len(t.Annots) == 0 {
		return t.Data
	}
	if len(t.Data) == 0 {
		return t.Annots
	}
	out := make(itemset.Itemset, 0, len(t.Data)+len(t.Annots))
	out = append(out, t.Data...)
	out = append(out, t.Annots...)
	return out
}

// HasAnnotation reports whether annotation a is attached to the tuple.
func (t Tuple) HasAnnotation(a itemset.Item) bool { return t.Annots.Contains(a) }

// Contains reports whether every item of pattern appears in the tuple.
func (t Tuple) Contains(pattern itemset.Itemset) bool {
	data, annots := pattern.Split()
	return t.Data.ContainsAll(data) && t.Annots.ContainsAll(annots)
}

// Clone returns an independent deep copy.
func (t Tuple) Clone() Tuple {
	return Tuple{Data: t.Data.Clone(), Annots: t.Annots.Clone()}
}

// Annotated reports whether the tuple carries at least one annotation.
func (t Tuple) Annotated() bool { return len(t.Annots) > 0 }

// ErrTupleIndex reports an out-of-range tuple index in an update batch.
var ErrTupleIndex = errors.New("relation: tuple index out of range")

// ErrDuplicateAnnotation reports an attempt to attach an annotation a tuple
// already carries. The paper notes "a data tuple can have a given label at
// most once"; the same invariant is enforced for raw annotations.
var ErrDuplicateAnnotation = errors.New("relation: annotation already present on tuple")

// ErrAnnotationNotPresent reports an attempt to detach an annotation the
// tuple does not carry.
var ErrAnnotationNotPresent = errors.New("relation: annotation not present on tuple")

// AnnotationUpdate is one line of a Figure 14 update batch: attach
// Annotation to the tuple at (zero-based) Index.
type AnnotationUpdate struct {
	Index      int
	Annotation itemset.Item
}

// Relation is an in-memory annotated relation with the auxiliary structures
// required by the incremental maintenance engine:
//
//   - an inverted annotation index: annotation → sorted tuple positions;
//   - a frequency table counting tuples per annotation (not occurrences —
//     an annotation appears at most once per tuple);
//   - a monotonically increasing version number, bumped on every mutation,
//     that lets downstream caches detect staleness.
//
// All methods are safe for concurrent use. Read methods hand out internal
// slices; callers must treat them as read-only.
type Relation struct {
	mu      sync.RWMutex
	dict    *Dictionary
	tuples  []Tuple
	index   map[itemset.Item][]int // annotation → ascending tuple positions
	freq    map[itemset.Item]int   // annotation → tuple count
	version uint64
}

// New creates an empty relation backed by a fresh dictionary.
func New() *Relation { return NewWithDictionary(NewDictionary()) }

// NewWithDictionary creates an empty relation sharing dict. Sharing lets a
// workload generator and the relation agree on token encoding.
func NewWithDictionary(dict *Dictionary) *Relation {
	if dict == nil {
		dict = NewDictionary()
	}
	return &Relation{
		dict:  dict,
		index: make(map[itemset.Item][]int),
		freq:  make(map[itemset.Item]int),
	}
}

// Dictionary returns the token dictionary backing the relation.
func (r *Relation) Dictionary() *Dictionary { return r.dict }

// Len returns the number of tuples (the |D| denominator of rule support).
func (r *Relation) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.tuples)
}

// Version returns the mutation counter.
func (r *Relation) Version() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.version
}

// Tuple returns the tuple at position i. The returned value shares backing
// arrays with the relation and must be treated as read-only.
func (r *Relation) Tuple(i int) (Tuple, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if i < 0 || i >= len(r.tuples) {
		return Tuple{}, fmt.Errorf("%w: %d (relation has %d tuples)", ErrTupleIndex, i, len(r.tuples))
	}
	return r.tuples[i], nil
}

// Each calls fn for every tuple position in order while holding a read lock.
// fn must not mutate the relation, and must not retain the tuple.
func (r *Relation) Each(fn func(i int, t Tuple) bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for i := range r.tuples {
		if !fn(i, r.tuples[i]) {
			return
		}
	}
}

// EachFrom behaves like Each but starts at position start. The incremental
// engine uses it to visit only newly appended tuples.
func (r *Relation) EachFrom(start int, fn func(i int, t Tuple) bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if start < 0 {
		start = 0
	}
	for i := start; i < len(r.tuples); i++ {
		if !fn(i, r.tuples[i]) {
			return
		}
	}
}

// Append adds tuples to the end of the relation, maintaining the annotation
// index and frequency table. It returns the position of the first appended
// tuple.
func (r *Relation) Append(tuples ...Tuple) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	start := len(r.tuples)
	for _, t := range tuples {
		pos := len(r.tuples)
		r.tuples = append(r.tuples, t)
		for _, a := range t.Annots {
			r.index[a] = append(r.index[a], pos)
			r.freq[a]++
		}
	}
	r.version++
	return start
}

// AddAnnotation attaches annotation a to the tuple at position i.
// Attaching a duplicate returns ErrDuplicateAnnotation and leaves the
// relation unchanged; an out-of-range index returns ErrTupleIndex.
func (r *Relation) AddAnnotation(i int, a itemset.Item) error {
	if !a.IsAnnotation() {
		return fmt.Errorf("relation: item %v is not an annotation", a)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if i < 0 || i >= len(r.tuples) {
		return fmt.Errorf("%w: %d (relation has %d tuples)", ErrTupleIndex, i, len(r.tuples))
	}
	t := &r.tuples[i]
	if t.Annots.Contains(a) {
		return fmt.Errorf("%w: %v on tuple %d", ErrDuplicateAnnotation, a, i)
	}
	t.Annots = t.Annots.Add(a)
	positions := r.index[a]
	at := sort.SearchInts(positions, i)
	positions = append(positions, 0)
	copy(positions[at+1:], positions[at:])
	positions[at] = i
	r.index[a] = positions
	r.freq[a]++
	r.version++
	return nil
}

// ApplyUpdates applies a Figure 14 annotation batch. It validates the whole
// batch against the current relation before mutating anything, so a batch
// either applies completely or not at all (duplicate-annotation entries are
// reported through the returned skipped list rather than failing the batch,
// because real curation batches legitimately re-send annotations).
//
// It returns the updates that were actually applied and the ones skipped as
// duplicates.
func (r *Relation) ApplyUpdates(batch []AnnotationUpdate) (applied, skipped []AnnotationUpdate, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, u := range batch {
		if u.Index < 0 || u.Index >= len(r.tuples) {
			return nil, nil, fmt.Errorf("%w: %d (relation has %d tuples)", ErrTupleIndex, u.Index, len(r.tuples))
		}
		if !u.Annotation.IsAnnotation() {
			return nil, nil, fmt.Errorf("relation: item %v in update batch is not an annotation", u.Annotation)
		}
	}
	// Track within-batch duplicates too: the same (tuple, annotation) pair
	// twice in one batch must apply only once.
	type pair struct {
		i int
		a itemset.Item
	}
	seen := make(map[pair]bool, len(batch))
	for _, u := range batch {
		p := pair{u.Index, u.Annotation}
		t := &r.tuples[u.Index]
		if seen[p] || t.Annots.Contains(u.Annotation) {
			skipped = append(skipped, u)
			continue
		}
		seen[p] = true
		t.Annots = t.Annots.Add(u.Annotation)
		positions := r.index[u.Annotation]
		at := sort.SearchInts(positions, u.Index)
		positions = append(positions, 0)
		copy(positions[at+1:], positions[at:])
		positions[at] = u.Index
		r.index[u.Annotation] = positions
		r.freq[u.Annotation]++
		applied = append(applied, u)
	}
	if len(applied) > 0 {
		r.version++
	}
	return applied, skipped, nil
}

// RemoveAnnotation detaches annotation a from the tuple at position i.
// Removing an absent annotation returns ErrAnnotationNotPresent and leaves
// the relation unchanged; an out-of-range index returns ErrTupleIndex.
func (r *Relation) RemoveAnnotation(i int, a itemset.Item) error {
	if !a.IsAnnotation() {
		return fmt.Errorf("relation: item %v is not an annotation", a)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if i < 0 || i >= len(r.tuples) {
		return fmt.Errorf("%w: %d (relation has %d tuples)", ErrTupleIndex, i, len(r.tuples))
	}
	t := &r.tuples[i]
	if !t.Annots.Contains(a) {
		return fmt.Errorf("%w: %v on tuple %d", ErrAnnotationNotPresent, a, i)
	}
	t.Annots = t.Annots.Remove(a)
	r.removeFromIndex(a, i)
	r.freq[a]--
	r.version++
	return nil
}

func (r *Relation) removeFromIndex(a itemset.Item, pos int) {
	positions := r.index[a]
	at := sort.SearchInts(positions, pos)
	if at < len(positions) && positions[at] == pos {
		positions = append(positions[:at], positions[at+1:]...)
		if len(positions) == 0 {
			delete(r.index, a)
		} else {
			r.index[a] = positions
		}
	}
}

// ApplyRemovals detaches a batch of annotations, mirroring ApplyUpdates:
// the whole batch is validated against the current relation first, entries
// whose annotation is (no longer) present are skipped rather than failing,
// and within-batch duplicates apply once.
func (r *Relation) ApplyRemovals(batch []AnnotationUpdate) (applied, skipped []AnnotationUpdate, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, u := range batch {
		if u.Index < 0 || u.Index >= len(r.tuples) {
			return nil, nil, fmt.Errorf("%w: %d (relation has %d tuples)", ErrTupleIndex, u.Index, len(r.tuples))
		}
		if !u.Annotation.IsAnnotation() {
			return nil, nil, fmt.Errorf("relation: item %v in removal batch is not an annotation", u.Annotation)
		}
	}
	for _, u := range batch {
		t := &r.tuples[u.Index]
		if !t.Annots.Contains(u.Annotation) {
			skipped = append(skipped, u)
			continue
		}
		t.Annots = t.Annots.Remove(u.Annotation)
		r.removeFromIndex(u.Annotation, u.Index)
		r.freq[u.Annotation]--
		applied = append(applied, u)
	}
	if len(applied) > 0 {
		r.version++
	}
	return applied, skipped, nil
}

// TuplesWith returns the ascending positions of tuples carrying annotation a.
// This is the paper's annotation inverted index; the returned slice is shared
// and must not be mutated.
func (r *Relation) TuplesWith(a itemset.Item) []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.index[a]
}

// Frequency returns the number of tuples carrying annotation a — the paper's
// annotation frequency table.
func (r *Relation) Frequency(a itemset.Item) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.freq[a]
}

// FrequencyTable returns a copy of the whole annotation frequency table.
func (r *Relation) FrequencyTable() map[itemset.Item]int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[itemset.Item]int, len(r.freq))
	for a, n := range r.freq {
		out[a] = n
	}
	return out
}

// Annotations returns every annotation item that appears on at least one
// tuple, sorted.
func (r *Relation) Annotations() itemset.Itemset {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]itemset.Item, 0, len(r.freq))
	for a, n := range r.freq {
		if n > 0 {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return itemset.FromSorted(out)
}

// CountPattern scans positions (or the whole relation when positions is nil)
// and counts tuples containing the pattern. The incremental engine uses the
// positions form with the annotation index to realize the paper's "check all
// data tuples in the database having this annotation" step without a full
// scan.
func (r *Relation) CountPattern(pattern itemset.Itemset, positions []int) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	if positions == nil {
		for i := range r.tuples {
			if r.tuples[i].Contains(pattern) {
				n++
			}
		}
		return n
	}
	for _, i := range positions {
		if i >= 0 && i < len(r.tuples) && r.tuples[i].Contains(pattern) {
			n++
		}
	}
	return n
}

// Clone returns a deep copy of the relation sharing no mutable state with the
// original. The dictionary is shared: token→item mappings are append-only,
// so sharing is safe and keeps clones comparable.
func (r *Relation) Clone() *Relation {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c := NewWithDictionary(r.dict)
	c.tuples = make([]Tuple, len(r.tuples))
	for i, t := range r.tuples {
		c.tuples[i] = t.Clone()
	}
	for a, positions := range r.index {
		c.index[a] = append([]int(nil), positions...)
	}
	for a, n := range r.freq {
		c.freq[a] = n
	}
	c.version = r.version
	return c
}

// Stats summarizes the relation for reports and examples.
type Stats struct {
	Tuples            int
	AnnotatedTuples   int
	Annotations       int // total attachments (tuple, annotation) pairs
	DistinctAnnots    int
	DistinctData      int
	MaxAnnotsPerTuple int
}

// Stats computes summary statistics in one pass.
func (r *Relation) Stats() Stats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var s Stats
	s.Tuples = len(r.tuples)
	dataSeen := make(map[itemset.Item]struct{})
	for i := range r.tuples {
		t := &r.tuples[i]
		if len(t.Annots) > 0 {
			s.AnnotatedTuples++
		}
		s.Annotations += len(t.Annots)
		if len(t.Annots) > s.MaxAnnotsPerTuple {
			s.MaxAnnotsPerTuple = len(t.Annots)
		}
		for _, d := range t.Data {
			dataSeen[d] = struct{}{}
		}
	}
	for a, n := range r.freq {
		_ = a
		if n > 0 {
			s.DistinctAnnots++
		}
	}
	s.DistinctData = len(dataSeen)
	return s
}

// CheckInvariants verifies the internal consistency of the index and
// frequency table against the tuples. It is called from tests and from the
// incremental engine's verification mode, never on hot paths.
func (r *Relation) CheckInvariants() error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	rebuiltFreq := make(map[itemset.Item]int)
	rebuiltIdx := make(map[itemset.Item][]int)
	for i := range r.tuples {
		t := &r.tuples[i]
		if !t.Data.Wellformed() || !t.Annots.Wellformed() {
			return fmt.Errorf("relation: tuple %d not canonical", i)
		}
		if t.Data.HasAnnotation() {
			return fmt.Errorf("relation: tuple %d has annotation in data part", i)
		}
		if !t.Annots.PureAnnotations() {
			return fmt.Errorf("relation: tuple %d has data value in annotation part", i)
		}
		for _, a := range t.Annots {
			rebuiltFreq[a]++
			rebuiltIdx[a] = append(rebuiltIdx[a], i)
		}
	}
	for a, n := range r.freq {
		if n != rebuiltFreq[a] {
			return fmt.Errorf("relation: frequency table says %d tuples for %v, actual %d", n, a, rebuiltFreq[a])
		}
	}
	for a, n := range rebuiltFreq {
		if r.freq[a] != n {
			return fmt.Errorf("relation: frequency table missing %v (actual %d)", a, n)
		}
	}
	for a, positions := range r.index {
		want := rebuiltIdx[a]
		if len(positions) != len(want) {
			return fmt.Errorf("relation: index for %v has %d entries, want %d", a, len(positions), len(want))
		}
		for i := range positions {
			if positions[i] != want[i] {
				return fmt.Errorf("relation: index for %v diverges at entry %d: %d != %d", a, i, positions[i], want[i])
			}
		}
	}
	for a, want := range rebuiltIdx {
		if _, ok := r.index[a]; !ok && len(want) > 0 {
			return fmt.Errorf("relation: index missing annotation %v", a)
		}
	}
	return nil
}
