package relation

import (
	"fmt"
	"sync"
	"testing"

	"annotadb/internal/itemset"
)

// Race-detector coverage for the store's concurrency contract: Relation and
// Dictionary are safe for concurrent use (internal locks), and the values
// read methods hand out (tuples, itemsets, index slices) stay valid while
// writers keep mutating, because mutation replaces slices instead of
// writing into shared backing arrays. Run with -race; without assertions
// failing, the detector is the oracle.

func TestDictionaryConcurrentInternAndLookup(t *testing.T) {
	d := NewDictionary()
	seedAnnot, err := d.InternAnnotation("Annot_seed")
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch g % 4 {
				case 0:
					if _, err := d.InternData(fmt.Sprintf("d%d_%d", g, i)); err != nil {
						t.Errorf("InternData: %v", err)
						return
					}
				case 1:
					if _, err := d.InternAnnotation(fmt.Sprintf("Annot_%d_%d", g, i)); err != nil {
						t.Errorf("InternAnnotation: %v", err)
						return
					}
				case 2:
					if tok := d.Token(seedAnnot); tok != "Annot_seed" {
						t.Errorf("Token(seed) = %q", tok)
						return
					}
					d.Lookup("Annot_seed")
					d.Len()
				default:
					d.AnnotationItems()
					d.CountOf(KindData)
					d.Clone()
				}
			}
		}(g)
	}
	wg.Wait()
	if _, ok := d.Lookup("Annot_seed"); !ok {
		t.Error("seed annotation lost")
	}
}

func TestRelationConcurrentReadersOneWriter(t *testing.T) {
	rel := New()
	dict := rel.Dictionary()
	annots := make([]itemset.Item, 4)
	for i := range annots {
		annots[i] = MustAnnotation(dict, fmt.Sprintf("Annot_%d", i))
	}
	for i := 0; i < 50; i++ {
		rel.Append(MustTuple(dict, []string{fmt.Sprintf("v%d", i%7), "shared"}, nil))
	}
	base := rel.Len()

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 6; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch i % 6 {
				case 0:
					tu, err := rel.Tuple(i % base)
					if err != nil {
						t.Errorf("Tuple: %v", err)
						return
					}
					_ = tu.Items() // touches both item slices
				case 1:
					rel.Each(func(_ int, tu Tuple) bool { return !tu.Annotated() })
				case 2:
					rel.CountPattern(itemset.New(annots[i%len(annots)]), nil)
				case 3:
					rel.TuplesWith(annots[i%len(annots)])
					rel.Frequency(annots[i%len(annots)])
				case 4:
					rel.Stats()
					rel.Annotations()
				default:
					rel.FrequencyTable()
					rel.Version()
				}
			}
		}(g)
	}

	// One writer: the serving layer's shape — appends plus annotation
	// attach/detach cycles against the initial range.
	for i := 0; i < 300; i++ {
		switch i % 3 {
		case 0:
			rel.Append(MustTuple(dict, []string{fmt.Sprintf("v%d", i%7)}, nil))
		case 1:
			if _, _, err := rel.ApplyUpdates([]AnnotationUpdate{
				{Index: i % base, Annotation: annots[i%len(annots)]},
			}); err != nil {
				t.Fatalf("ApplyUpdates: %v", err)
			}
		default:
			if _, _, err := rel.ApplyRemovals([]AnnotationUpdate{
				{Index: (i - 1) % base, Annotation: annots[(i-1)%len(annots)]},
			}); err != nil {
				t.Fatalf("ApplyRemovals: %v", err)
			}
		}
	}
	close(stop)
	readers.Wait()

	if err := rel.CheckInvariants(); err != nil {
		t.Fatalf("invariants after concurrent traffic: %v", err)
	}
}

// TestTupleValuesStableAcrossMutation pins the copy-on-write contract that
// the serving layer's lock-free readers rely on: a Tuple value captured
// before an annotation attach keeps its pre-attach contents, because
// attaching replaces the tuple's annotation slice rather than mutating the
// shared array in place.
func TestTupleValuesStableAcrossMutation(t *testing.T) {
	rel := New()
	dict := rel.Dictionary()
	a1 := MustAnnotation(dict, "Annot_1")
	a2 := MustAnnotation(dict, "Annot_2")
	rel.Append(MustTuple(dict, []string{"28", "85"}, []string{"Annot_1"}))

	before, err := rel.Tuple(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := rel.AddAnnotation(0, a2); err != nil {
		t.Fatal(err)
	}
	if before.Annots.Contains(a2) {
		t.Error("captured tuple saw a later attach: shared backing array was mutated")
	}
	if !before.Annots.Contains(a1) || before.Annots.Len() != 1 {
		t.Errorf("captured tuple corrupted: %v", before.Annots)
	}
	after, err := rel.Tuple(0)
	if err != nil {
		t.Fatal(err)
	}
	if !after.Annots.Contains(a2) {
		t.Error("fresh read missing the attach")
	}

	if err := rel.RemoveAnnotation(0, a1); err != nil {
		t.Fatal(err)
	}
	if !after.Annots.Contains(a1) {
		t.Error("captured tuple saw a later detach: shared backing array was mutated")
	}
}
