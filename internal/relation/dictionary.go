// Package relation implements the annotated relational store at the base of
// annotadb: dictionary-encoded tuples carrying data values and annotation
// sets, plus the two auxiliary structures the paper's incremental algorithms
// rely on — the annotation inverted index ("the system indexes the
// annotations such that given a query annotation, we can efficiently find all
// data tuples having this annotation", §4.3) and the annotation frequency
// table ("the system maintains a table containing the frequency of each
// annotation, and it is updated whenever a new annotation is added", §4.3).
package relation

import (
	"fmt"
	"sort"
	"sync"

	"annotadb/internal/itemset"
)

// Kind classifies a dictionary token.
type Kind uint8

const (
	// KindData is a plain data value (the numeric IDs of Figure 4).
	KindData Kind = iota
	// KindAnnotation is a raw user-supplied annotation (Annot_4 in Figure 4).
	KindAnnotation
	// KindDerived is a generalization label attached by the system (§4.1).
	KindDerived
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindAnnotation:
		return "annotation"
	case KindDerived:
		return "derived"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Dictionary maps external tokens (the strings appearing in dataset files) to
// dense itemset.Item codes and back. A token has exactly one kind; interning
// the same token under a different kind is an error, which catches dataset
// files that use one spelling both as a value and as an annotation.
//
// Dictionary is safe for concurrent use.
type Dictionary struct {
	mu      sync.RWMutex
	byToken map[string]itemset.Item
	byItem  map[itemset.Item]string
	counts  [3]int // interned tokens per kind
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{
		byToken: make(map[string]itemset.Item),
		byItem:  make(map[itemset.Item]string),
	}
}

func (d *Dictionary) intern(token string, kind Kind) (itemset.Item, error) {
	if token == "" {
		return itemset.None, fmt.Errorf("relation: cannot intern empty token")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if it, ok := d.byToken[token]; ok {
		if kindOf(it) != kind {
			return itemset.None, fmt.Errorf("relation: token %q already interned as %s, cannot re-intern as %s",
				token, kindOf(it), kind)
		}
		return it, nil
	}
	id := d.counts[kind] + 1
	if id > itemset.MaxID {
		return itemset.None, fmt.Errorf("relation: %s dictionary full (%d tokens)", kind, itemset.MaxID)
	}
	var it itemset.Item
	switch kind {
	case KindData:
		it = itemset.DataItem(id)
	case KindAnnotation:
		it = itemset.AnnotationItem(id)
	case KindDerived:
		it = itemset.DerivedItem(id)
	default:
		return itemset.None, fmt.Errorf("relation: unknown kind %v", kind)
	}
	d.counts[kind] = id
	d.byToken[token] = it
	d.byItem[it] = token
	return it, nil
}

func kindOf(it itemset.Item) Kind {
	switch {
	case it.IsDerived():
		return KindDerived
	case it.IsAnnotation():
		return KindAnnotation
	default:
		return KindData
	}
}

// InternData interns token as a data value.
func (d *Dictionary) InternData(token string) (itemset.Item, error) {
	return d.intern(token, KindData)
}

// InternAnnotation interns token as a raw annotation.
func (d *Dictionary) InternAnnotation(token string) (itemset.Item, error) {
	return d.intern(token, KindAnnotation)
}

// InternDerived interns token as a derived generalization label.
func (d *Dictionary) InternDerived(token string) (itemset.Item, error) {
	return d.intern(token, KindDerived)
}

// Lookup returns the item for token, if interned.
func (d *Dictionary) Lookup(token string) (itemset.Item, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	it, ok := d.byToken[token]
	return it, ok
}

// Token returns the external token for an item. Unknown items render as
// the item's debug form so that diagnostics never panic.
func (d *Dictionary) Token(it itemset.Item) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if tok, ok := d.byItem[it]; ok {
		return tok
	}
	return it.String()
}

// TokenOK returns the external token for an item and whether it was interned.
func (d *Dictionary) TokenOK(it itemset.Item) (string, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	tok, ok := d.byItem[it]
	return tok, ok
}

// Tokens renders an itemset as external tokens, in the set's canonical order.
func (d *Dictionary) Tokens(s itemset.Itemset) []string {
	out := make([]string, len(s))
	for i, it := range s {
		out[i] = d.Token(it)
	}
	return out
}

// Len returns the total number of interned tokens.
func (d *Dictionary) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.byToken)
}

// CountOf returns the number of interned tokens of a kind.
func (d *Dictionary) CountOf(kind Kind) int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(kind) >= len(d.counts) {
		return 0
	}
	return d.counts[kind]
}

// AnnotationItems returns every interned raw-annotation item, sorted.
func (d *Dictionary) AnnotationItems() itemset.Itemset {
	return d.itemsOf(KindAnnotation)
}

// DerivedItems returns every interned derived-label item, sorted.
func (d *Dictionary) DerivedItems() itemset.Itemset {
	return d.itemsOf(KindDerived)
}

// DataItems returns every interned data-value item, sorted.
func (d *Dictionary) DataItems() itemset.Itemset {
	return d.itemsOf(KindData)
}

func (d *Dictionary) itemsOf(kind Kind) itemset.Itemset {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var out []itemset.Item
	for it := range d.byItem {
		if kindOf(it) == kind {
			out = append(out, it)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return itemset.FromSorted(out)
}

// Clone returns a deep copy of the dictionary. Clones are used by tests and
// by the incremental engine's re-mine fallback so that mutation experiments
// cannot interfere with each other.
func (d *Dictionary) Clone() *Dictionary {
	d.mu.RLock()
	defer d.mu.RUnlock()
	c := NewDictionary()
	for tok, it := range d.byToken {
		c.byToken[tok] = it
		c.byItem[it] = tok
	}
	c.counts = d.counts
	return c
}
