package relation

import (
	"fmt"
	"sync"
	"testing"

	"annotadb/internal/itemset"
)

// viewFixture builds a relation with n tuples: tuple i carries data value
// "d<i%7>" and annotation Annot_A on every third tuple.
func viewFixture(t testing.TB, n int) *Relation {
	t.Helper()
	r := New()
	dict := r.Dictionary()
	a := MustAnnotation(dict, "Annot_A")
	batch := make([]Tuple, 0, n)
	for i := 0; i < n; i++ {
		d := MustData(dict, fmt.Sprintf("d%d", i%7))
		items := []itemset.Item{d}
		if i%3 == 0 {
			items = append(items, a)
		}
		batch = append(batch, NewTuple(items...))
	}
	r.Append(batch...)
	return r
}

func TestViewIsImmutableUnderMutation(t *testing.T) {
	t.Parallel()
	r := viewFixture(t, 2*chunkSize+17)
	dict := r.Dictionary()
	a := MustAnnotation(dict, "Annot_A")
	b := MustAnnotation(dict, "Annot_B")

	v := r.View()
	wantLen := v.Len()
	wantVersion := v.Version()
	wantFreqA := v.Frequency(a)
	tu0, err := v.Tuple(0)
	if err != nil {
		t.Fatal(err)
	}
	if !tu0.HasAnnotation(a) {
		t.Fatal("fixture: tuple 0 should carry Annot_A")
	}
	wantPostings := append([]int(nil), v.TuplesWith(a)...)

	// Mutate through every path: attach, detach, append.
	if err := r.AddAnnotation(1, b); err != nil {
		t.Fatal(err)
	}
	if err := r.RemoveAnnotation(0, a); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.ApplyUpdates([]AnnotationUpdate{{Index: 5, Annotation: b}}); err != nil {
		t.Fatal(err)
	}
	r.Append(MustTuple(dict, []string{"d0"}, []string{"Annot_B"}))

	if v.Len() != wantLen {
		t.Errorf("view Len changed under mutation: %d -> %d", wantLen, v.Len())
	}
	if v.Version() != wantVersion {
		t.Errorf("view Version changed under mutation: %d -> %d", wantVersion, v.Version())
	}
	if got := v.Frequency(a); got != wantFreqA {
		t.Errorf("view Frequency changed under mutation: %d -> %d", wantFreqA, got)
	}
	tu0v, err := v.Tuple(0)
	if err != nil {
		t.Fatal(err)
	}
	if !tu0v.HasAnnotation(a) {
		t.Error("view tuple 0 lost Annot_A after live detach")
	}
	tu1v, _ := v.Tuple(1)
	if tu1v.HasAnnotation(b) {
		t.Error("view tuple 1 gained Annot_B from live attach")
	}
	got := v.TuplesWith(a)
	if len(got) != len(wantPostings) {
		t.Fatalf("view postings changed: %v -> %v", wantPostings, got)
	}
	for i := range got {
		if got[i] != wantPostings[i] {
			t.Fatalf("view postings changed at %d: %v -> %v", i, wantPostings, got)
		}
	}

	// The live relation moved on.
	live, _ := r.Tuple(0)
	if live.HasAnnotation(a) {
		t.Error("live tuple 0 still carries removed Annot_A")
	}
	if r.Len() != wantLen+1 {
		t.Errorf("live Len = %d, want %d", r.Len(), wantLen+1)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestViewIsMemoizedBetweenMutations(t *testing.T) {
	t.Parallel()
	r := viewFixture(t, 10)
	v1 := r.View()
	if v2 := r.View(); v1 != v2 {
		t.Error("View() without intervening mutation returned a new view")
	}
	r.Append(MustTuple(r.Dictionary(), []string{"d1"}, nil))
	if v3 := r.View(); v3 == v1 {
		t.Error("View() after mutation returned the stale view")
	}
}

// TestViewStructuralSharing pins the COW contract: a single-tuple mutation
// copies only the touched chunk; every other chunk is shared by address
// between consecutive generations.
func TestViewStructuralSharing(t *testing.T) {
	t.Parallel()
	r := viewFixture(t, 4*chunkSize)
	dict := r.Dictionary()
	b := MustAnnotation(dict, "Annot_B")

	v1 := r.View()
	if err := r.AddAnnotation(chunkSize+1, b); err != nil { // lives in chunk 1
		t.Fatal(err)
	}
	v2 := r.View()

	if len(v1.st.chunks) != len(v2.st.chunks) {
		t.Fatalf("chunk counts differ: %d vs %d", len(v1.st.chunks), len(v2.st.chunks))
	}
	for c := range v1.st.chunks {
		shared := &v1.st.chunks[c][0] == &v2.st.chunks[c][0]
		if c == 1 && shared {
			t.Error("mutated chunk 1 still shared between generations")
		}
		if c != 1 && !shared {
			t.Errorf("untouched chunk %d was copied", c)
		}
	}
}

func TestViewAgainstLiveRelationReads(t *testing.T) {
	t.Parallel()
	r := viewFixture(t, 3*chunkSize+5)
	v := r.View()
	if v.Len() != r.Len() {
		t.Fatalf("Len: view %d, live %d", v.Len(), r.Len())
	}
	if v.Version() != r.Version() {
		t.Fatalf("Version: view %d, live %d", v.Version(), r.Version())
	}
	r.Each(func(i int, want Tuple) bool {
		got, err := v.Tuple(i)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Data.Equal(want.Data) || !got.Annots.Equal(want.Annots) {
			t.Fatalf("tuple %d differs between view and live relation", i)
		}
		return true
	})
	if got, want := v.Stats(), r.Stats(); got != want {
		t.Errorf("Stats: view %+v, live %+v", got, want)
	}
	if got, want := v.Annotations(), r.Annotations(); !got.Equal(want) {
		t.Errorf("Annotations: view %v, live %v", got, want)
	}
	pattern := itemset.New(MustData(r.Dictionary(), "d0"))
	if got, want := v.CountPattern(pattern, nil), r.CountPattern(pattern, nil); got != want {
		t.Errorf("CountPattern: view %d, live %d", got, want)
	}
	if _, err := v.Tuple(-1); err == nil {
		t.Error("view Tuple(-1) did not fail")
	}
	if _, err := v.Tuple(v.Len()); err == nil {
		t.Error("view Tuple(len) did not fail")
	}
}

// TestViewConcurrentReadersUnderWriter runs pinned-view readers against a
// hammering writer under -race: a data race here means a view shares memory
// the relation still writes.
func TestViewConcurrentReadersUnderWriter(t *testing.T) {
	t.Parallel()
	r := viewFixture(t, 2*chunkSize)
	dict := r.Dictionary()
	b := MustAnnotation(dict, "Annot_B")

	const generations = 200
	views := make(chan *View, 16)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: mutate, publish a fresh generation each round
		defer wg.Done()
		defer close(views)
		for i := 0; i < generations; i++ {
			idx := i % r.Len()
			if i%2 == 0 {
				_ = r.AddAnnotation(idx, b)
			} else {
				_ = r.RemoveAnnotation(idx, b)
			}
			if i%16 == 0 {
				r.Append(MustTuple(dict, []string{"dX"}, nil))
			}
			views <- r.View()
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() { // readers: full scans over whatever generation arrives
			defer wg.Done()
			for v := range views {
				n := 0
				v.Each(func(_ int, t Tuple) bool {
					n += len(t.Annots)
					return true
				})
				_ = v.Frequency(b)
				_ = v.TuplesWith(b)
			}
		}()
	}
	wg.Wait()
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCloneViaViewIsDeepAndVersionPreserving(t *testing.T) {
	t.Parallel()
	r := viewFixture(t, chunkSize+3)
	dict := r.Dictionary()
	b := MustAnnotation(dict, "Annot_B")
	c := r.Clone()
	if c.Len() != r.Len() || c.Version() != r.Version() {
		t.Fatalf("clone Len/Version = %d/%d, want %d/%d", c.Len(), c.Version(), r.Len(), r.Version())
	}
	if err := r.AddAnnotation(2, b); err != nil {
		t.Fatal(err)
	}
	ct, _ := c.Tuple(2)
	if ct.HasAnnotation(b) {
		t.Error("clone observed a mutation of its source")
	}
	if err := c.AddAnnotation(3, MustAnnotation(dict, "Annot_C")); err != nil {
		t.Fatal(err)
	}
	rt, _ := r.Tuple(3)
	if rt.HasAnnotation(MustAnnotation(dict, "Annot_C")) {
		t.Error("source observed a mutation of its clone")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkViewCapture measures publishing one generation after a
// single-annotation delta on relations of growing size: the point of the
// chunked COW store is that this cost tracks the delta (one chunk copy plus
// once-per-generation map headers), not the relation.
func BenchmarkViewCapture(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 13, 1 << 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			r := viewFixture(b, n)
			a := MustAnnotation(r.Dictionary(), "Annot_Bench")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx := i % n
				if i%2 == 0 {
					_ = r.AddAnnotation(idx, a)
				} else {
					_ = r.RemoveAnnotation(idx, a)
				}
				if v := r.View(); v.Len() != n {
					b.Fatal("bad view")
				}
			}
		})
	}
}

// BenchmarkViewAppend measures the append path with a view captured per
// batch — the serving writer's shape: append, publish, repeat.
func BenchmarkViewAppend(b *testing.B) {
	r := viewFixture(b, chunkSize)
	dict := r.Dictionary()
	tu := MustTuple(dict, []string{"dA"}, []string{"Annot_A"})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Append(tu)
		if v := r.View(); v.Len() == 0 {
			b.Fatal("bad view")
		}
	}
}

// BenchmarkCloneBaseline is the pre-view generation cost for contrast: a
// deep copy per generation, O(n) no matter how small the delta.
func BenchmarkCloneBaseline(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 13} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			r := viewFixture(b, n)
			a := MustAnnotation(r.Dictionary(), "Annot_Bench")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx := i % n
				if i%2 == 0 {
					_ = r.AddAnnotation(idx, a)
				} else {
					_ = r.RemoveAnnotation(idx, a)
				}
				if c := r.Clone(); c.Len() != n {
					b.Fatal("bad clone")
				}
			}
		})
	}
}
