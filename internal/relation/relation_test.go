package relation

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"annotadb/internal/itemset"
)

func TestDictionaryInternAndLookup(t *testing.T) {
	d := NewDictionary()
	v1, err := d.InternData("28")
	if err != nil {
		t.Fatal(err)
	}
	a1, err := d.InternAnnotation("Annot_1")
	if err != nil {
		t.Fatal(err)
	}
	g1, err := d.InternDerived("Annot_X")
	if err != nil {
		t.Fatal(err)
	}
	if !v1.IsData() || !a1.IsAnnotation() || a1.IsDerived() || !g1.IsDerived() {
		t.Fatalf("kind tags wrong: %v %v %v", v1, a1, g1)
	}
	// Interning again returns the same item.
	v1b, err := d.InternData("28")
	if err != nil || v1b != v1 {
		t.Errorf("re-intern: got %v, %v; want %v, nil", v1b, err, v1)
	}
	// Lookup and reverse lookup.
	if it, ok := d.Lookup("Annot_1"); !ok || it != a1 {
		t.Errorf("Lookup(Annot_1) = %v, %v", it, ok)
	}
	if tok := d.Token(a1); tok != "Annot_1" {
		t.Errorf("Token = %q, want Annot_1", tok)
	}
	if _, ok := d.Lookup("missing"); ok {
		t.Error("Lookup of missing token succeeded")
	}
	if tok, ok := d.TokenOK(itemset.AnnotationItem(999)); ok {
		t.Errorf("TokenOK of unknown item = %q, true", tok)
	}
	if d.Len() != 3 {
		t.Errorf("Len = %d, want 3", d.Len())
	}
	if d.CountOf(KindData) != 1 || d.CountOf(KindAnnotation) != 1 || d.CountOf(KindDerived) != 1 {
		t.Error("per-kind counts wrong")
	}
}

func TestDictionaryKindConflict(t *testing.T) {
	d := NewDictionary()
	if _, err := d.InternData("tok"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.InternAnnotation("tok"); err == nil {
		t.Error("re-interning data token as annotation succeeded, want error")
	}
	if _, err := d.InternDerived("tok"); err == nil {
		t.Error("re-interning data token as derived succeeded, want error")
	}
}

func TestDictionaryEmptyToken(t *testing.T) {
	d := NewDictionary()
	if _, err := d.InternData(""); err == nil {
		t.Error("interning empty token succeeded, want error")
	}
}

func TestDictionaryItemListings(t *testing.T) {
	d := NewDictionary()
	MustData(d, "1")
	MustData(d, "2")
	MustAnnotation(d, "A")
	if _, err := d.InternDerived("G"); err != nil {
		t.Fatal(err)
	}
	if got := d.DataItems().Len(); got != 2 {
		t.Errorf("DataItems len = %d, want 2", got)
	}
	if got := d.AnnotationItems().Len(); got != 1 {
		t.Errorf("AnnotationItems len = %d, want 1", got)
	}
	if got := d.DerivedItems().Len(); got != 1 {
		t.Errorf("DerivedItems len = %d, want 1", got)
	}
	if !d.DataItems().Wellformed() {
		t.Error("DataItems not sorted")
	}
}

func TestDictionaryClone(t *testing.T) {
	d := NewDictionary()
	MustData(d, "x")
	c := d.Clone()
	MustData(c, "y")
	if d.Len() != 1 {
		t.Errorf("clone mutation leaked into original: len=%d", d.Len())
	}
	if c.Len() != 2 {
		t.Errorf("clone len = %d, want 2", c.Len())
	}
	// Items interned before the clone resolve identically.
	it1, _ := d.Lookup("x")
	it2, _ := c.Lookup("x")
	if it1 != it2 {
		t.Error("clone re-encoded existing token")
	}
}

func TestTupleConstructionAndQueries(t *testing.T) {
	d := NewDictionary()
	tu := MustTuple(d, []string{"5", "3", "5"}, []string{"A2", "A1"})
	if tu.Data.Len() != 2 {
		t.Errorf("data deduplication failed: %v", tu.Data)
	}
	if tu.Annots.Len() != 2 {
		t.Errorf("annotations: %v", tu.Annots)
	}
	if !tu.Annotated() {
		t.Error("Annotated = false")
	}
	all := tu.Items()
	if all.Len() != 4 || !all.Wellformed() {
		t.Errorf("Items() = %v", all)
	}
	a1, _ := d.Lookup("A1")
	if !tu.HasAnnotation(a1) {
		t.Error("HasAnnotation(A1) = false")
	}
	v3, _ := d.Lookup("3")
	if !tu.Contains(itemset.New(v3, a1)) {
		t.Error("Contains mixed pattern = false")
	}
	if tu.Contains(itemset.New(itemset.DataItem(999))) {
		t.Error("Contains unknown = true")
	}
	bare := NewTuple()
	if bare.Annotated() {
		t.Error("empty tuple Annotated = true")
	}
	if got := bare.Items(); !got.Empty() {
		t.Errorf("empty tuple Items = %v", got)
	}
}

func buildSample(t *testing.T) *Relation {
	t.Helper()
	// Mirrors the flavor of Figure 4: ID-valued tuples, Annot_k annotations.
	return FromTokens(
		[][]string{
			{"28", "85", "99"},
			{"28", "85", "12"},
			{"41", "85"},
			{"28", "41"},
			{"62"},
		},
		[][]string{
			{"Annot_1", "Annot_5"},
			{"Annot_1"},
			{"Annot_4"},
			nil,
			{"Annot_1", "Annot_4"},
		},
	)
}

func TestRelationAppendAndAccessors(t *testing.T) {
	r := buildSample(t)
	if r.Len() != 5 {
		t.Fatalf("Len = %d, want 5", r.Len())
	}
	tu, err := r.Tuple(0)
	if err != nil {
		t.Fatal(err)
	}
	if tu.Data.Len() != 3 || tu.Annots.Len() != 2 {
		t.Errorf("tuple 0 = %v / %v", tu.Data, tu.Annots)
	}
	if _, err := r.Tuple(5); !errors.Is(err, ErrTupleIndex) {
		t.Errorf("Tuple(5) err = %v, want ErrTupleIndex", err)
	}
	if _, err := r.Tuple(-1); !errors.Is(err, ErrTupleIndex) {
		t.Errorf("Tuple(-1) err = %v, want ErrTupleIndex", err)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRelationIndexAndFrequency(t *testing.T) {
	r := buildSample(t)
	d := r.Dictionary()
	a1, _ := d.Lookup("Annot_1")
	a4, _ := d.Lookup("Annot_4")
	a5, _ := d.Lookup("Annot_5")

	if got := r.TuplesWith(a1); len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 4 {
		t.Errorf("TuplesWith(Annot_1) = %v, want [0 1 4]", got)
	}
	if got := r.TuplesWith(a4); len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Errorf("TuplesWith(Annot_4) = %v, want [2 4]", got)
	}
	if got := r.Frequency(a5); got != 1 {
		t.Errorf("Frequency(Annot_5) = %d, want 1", got)
	}
	if got := r.Frequency(itemset.AnnotationItem(999)); got != 0 {
		t.Errorf("Frequency(unknown) = %d, want 0", got)
	}
	ft := r.FrequencyTable()
	if ft[a1] != 3 || ft[a4] != 2 || ft[a5] != 1 {
		t.Errorf("FrequencyTable = %v", ft)
	}
	if got := r.Annotations(); got.Len() != 3 || !got.Wellformed() {
		t.Errorf("Annotations = %v", got)
	}
}

func TestAddAnnotation(t *testing.T) {
	r := buildSample(t)
	d := r.Dictionary()
	a9 := MustAnnotation(d, "Annot_9")
	a1, _ := d.Lookup("Annot_1")

	if err := r.AddAnnotation(3, a9); err != nil {
		t.Fatal(err)
	}
	tu, _ := r.Tuple(3)
	if !tu.HasAnnotation(a9) {
		t.Error("annotation not attached")
	}
	if got := r.Frequency(a9); got != 1 {
		t.Errorf("Frequency after add = %d, want 1", got)
	}
	if got := r.TuplesWith(a9); len(got) != 1 || got[0] != 3 {
		t.Errorf("TuplesWith after add = %v", got)
	}
	// Duplicate add fails without mutating.
	v := r.Version()
	if err := r.AddAnnotation(0, a1); !errors.Is(err, ErrDuplicateAnnotation) {
		t.Errorf("duplicate add err = %v, want ErrDuplicateAnnotation", err)
	}
	if r.Version() != v {
		t.Error("failed add bumped version")
	}
	// Out of range.
	if err := r.AddAnnotation(99, a9); !errors.Is(err, ErrTupleIndex) {
		t.Errorf("out-of-range err = %v", err)
	}
	// Non-annotation item.
	v28, _ := d.Lookup("28")
	if err := r.AddAnnotation(0, v28); err == nil {
		t.Error("adding data value as annotation succeeded")
	}
	// Index stays sorted after out-of-order inserts.
	a10 := MustAnnotation(d, "Annot_10")
	for _, i := range []int{4, 0, 2} {
		if err := r.AddAnnotation(i, a10); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.TuplesWith(a10); got[0] != 0 || got[1] != 2 || got[2] != 4 {
		t.Errorf("index unsorted: %v", got)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyUpdatesAtomicity(t *testing.T) {
	r := buildSample(t)
	d := r.Dictionary()
	a9 := MustAnnotation(d, "Annot_9")
	v := r.Version()
	// Batch with one bad index must not apply anything.
	_, _, err := r.ApplyUpdates([]AnnotationUpdate{
		{Index: 0, Annotation: a9},
		{Index: 99, Annotation: a9},
	})
	if !errors.Is(err, ErrTupleIndex) {
		t.Fatalf("err = %v, want ErrTupleIndex", err)
	}
	if r.Version() != v {
		t.Error("failed batch mutated relation")
	}
	tu, _ := r.Tuple(0)
	if tu.HasAnnotation(a9) {
		t.Error("failed batch attached annotation")
	}
}

func TestApplyUpdatesSkipsDuplicates(t *testing.T) {
	r := buildSample(t)
	d := r.Dictionary()
	a1, _ := d.Lookup("Annot_1")
	a9 := MustAnnotation(d, "Annot_9")
	applied, skipped, err := r.ApplyUpdates([]AnnotationUpdate{
		{Index: 0, Annotation: a1}, // already on tuple 0 → skipped
		{Index: 3, Annotation: a9}, // fresh → applied
		{Index: 3, Annotation: a9}, // within-batch duplicate → skipped
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 1 || applied[0].Index != 3 {
		t.Errorf("applied = %v", applied)
	}
	if len(skipped) != 2 {
		t.Errorf("skipped = %v", skipped)
	}
	if got := r.Frequency(a9); got != 1 {
		t.Errorf("Frequency = %d, want 1", got)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyUpdatesRejectsDataItems(t *testing.T) {
	r := buildSample(t)
	v28, _ := r.Dictionary().Lookup("28")
	if _, _, err := r.ApplyUpdates([]AnnotationUpdate{{Index: 0, Annotation: v28}}); err == nil {
		t.Error("batch with data item as annotation succeeded")
	}
}

func TestCountPattern(t *testing.T) {
	r := buildSample(t)
	d := r.Dictionary()
	v28, _ := d.Lookup("28")
	v85, _ := d.Lookup("85")
	a1, _ := d.Lookup("Annot_1")

	tests := []struct {
		name    string
		pattern itemset.Itemset
		want    int
	}{
		{"single data", itemset.New(v28), 3},
		{"pair", itemset.New(v28, v85), 2},
		{"data+annot", itemset.New(v28, v85, a1), 2},
		{"annot only", itemset.New(a1), 3},
		{"empty pattern matches all", nil, 5},
	}
	for _, tc := range tests {
		if got := r.CountPattern(tc.pattern, nil); got != tc.want {
			t.Errorf("%s: CountPattern = %d, want %d", tc.name, got, tc.want)
		}
	}
	// Restricted to the annotation index of Annot_1 (positions 0,1,4).
	if got := r.CountPattern(itemset.New(v28), r.TuplesWith(a1)); got != 2 {
		t.Errorf("indexed CountPattern = %d, want 2", got)
	}
}

func TestEachAndEachFrom(t *testing.T) {
	r := buildSample(t)
	var visited []int
	r.Each(func(i int, tu Tuple) bool {
		visited = append(visited, i)
		return true
	})
	if len(visited) != 5 || visited[0] != 0 || visited[4] != 4 {
		t.Errorf("Each visited %v", visited)
	}
	visited = nil
	r.EachFrom(3, func(i int, tu Tuple) bool {
		visited = append(visited, i)
		return true
	})
	if len(visited) != 2 || visited[0] != 3 {
		t.Errorf("EachFrom(3) visited %v", visited)
	}
	// Early stop.
	visited = nil
	r.Each(func(i int, tu Tuple) bool {
		visited = append(visited, i)
		return false
	})
	if len(visited) != 1 {
		t.Errorf("early stop visited %v", visited)
	}
	// Negative start clamps to zero.
	count := 0
	r.EachFrom(-10, func(int, Tuple) bool { count++; return true })
	if count != 5 {
		t.Errorf("EachFrom(-10) visited %d", count)
	}
}

func TestCloneIsolation(t *testing.T) {
	r := buildSample(t)
	c := r.Clone()
	a9 := MustAnnotation(r.Dictionary(), "Annot_9")
	if err := c.AddAnnotation(0, a9); err != nil {
		t.Fatal(err)
	}
	tu, _ := r.Tuple(0)
	if tu.HasAnnotation(a9) {
		t.Error("clone mutation leaked into original")
	}
	if r.Frequency(a9) != 0 {
		t.Error("clone frequency leaked")
	}
	if err := r.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestStats(t *testing.T) {
	r := buildSample(t)
	s := r.Stats()
	if s.Tuples != 5 {
		t.Errorf("Tuples = %d", s.Tuples)
	}
	if s.AnnotatedTuples != 4 {
		t.Errorf("AnnotatedTuples = %d, want 4", s.AnnotatedTuples)
	}
	if s.Annotations != 6 {
		t.Errorf("Annotations = %d, want 6", s.Annotations)
	}
	if s.DistinctAnnots != 3 {
		t.Errorf("DistinctAnnots = %d, want 3", s.DistinctAnnots)
	}
	if s.DistinctData != 6 {
		t.Errorf("DistinctData = %d, want 6", s.DistinctData)
	}
	if s.MaxAnnotsPerTuple != 2 {
		t.Errorf("MaxAnnotsPerTuple = %d, want 2", s.MaxAnnotsPerTuple)
	}
}

func TestVersionBumps(t *testing.T) {
	r := New()
	v0 := r.Version()
	r.Append(MustTuple(r.Dictionary(), []string{"1"}, nil))
	if r.Version() == v0 {
		t.Error("Append did not bump version")
	}
	v1 := r.Version()
	a := MustAnnotation(r.Dictionary(), "A")
	if err := r.AddAnnotation(0, a); err != nil {
		t.Fatal(err)
	}
	if r.Version() == v1 {
		t.Error("AddAnnotation did not bump version")
	}
	v2 := r.Version()
	// A batch that applies nothing must not bump.
	if _, _, err := r.ApplyUpdates([]AnnotationUpdate{{Index: 0, Annotation: a}}); err != nil {
		t.Fatal(err)
	}
	if r.Version() != v2 {
		t.Error("no-op batch bumped version")
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	r := buildSample(t)
	d := r.Dictionary()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r.Each(func(i int, tu Tuple) bool { _ = tu.Annotated(); return true })
				_ = r.FrequencyTable()
				_ = r.Stats()
			}
		}()
	}
	// Writer: appends and annotates.
	a := MustAnnotation(d, "Annot_C")
	for i := 0; i < 200; i++ {
		pos := r.Append(MustTuple(d, []string{"7"}, nil))
		if err := r.AddAnnotation(pos, a); err != nil {
			t.Errorf("AddAnnotation: %v", err)
			break
		}
	}
	close(stop)
	wg.Wait()
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 205 {
		t.Errorf("Len = %d, want 205", r.Len())
	}
}

// TestPropertyIndexMatchesScan cross-checks the inverted index against a
// brute-force scan over randomized relations and mutation sequences.
func TestPropertyIndexMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func() bool {
		r := New()
		d := r.Dictionary()
		annots := make([]itemset.Item, 4)
		for i := range annots {
			annots[i] = MustAnnotation(d, "A"+string(rune('0'+i)))
		}
		// Random initial tuples.
		n := 1 + rng.Intn(30)
		for i := 0; i < n; i++ {
			var items []itemset.Item
			for v := 0; v < 1+rng.Intn(4); v++ {
				items = append(items, itemset.DataItem(1+rng.Intn(10)))
			}
			for _, a := range annots {
				if rng.Intn(3) == 0 {
					items = append(items, a)
				}
			}
			r.Append(NewTuple(items...))
		}
		// Random annotation adds (duplicates allowed and ignored).
		for k := 0; k < 20; k++ {
			_ = r.AddAnnotation(rng.Intn(r.Len()), annots[rng.Intn(len(annots))])
		}
		if err := r.CheckInvariants(); err != nil {
			t.Logf("invariants: %v", err)
			return false
		}
		// Index positions equal scan positions for every annotation.
		for _, a := range annots {
			var scan []int
			r.Each(func(i int, tu Tuple) bool {
				if tu.HasAnnotation(a) {
					scan = append(scan, i)
				}
				return true
			})
			idx := r.TuplesWith(a)
			if len(idx) != len(scan) {
				return false
			}
			for i := range idx {
				if idx[i] != scan[i] {
					return false
				}
			}
			if r.Frequency(a) != len(scan) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	if KindData.String() != "data" || KindAnnotation.String() != "annotation" || KindDerived.String() != "derived" {
		t.Error("Kind.String names wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind renders empty")
	}
}
