package load

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Experiments describes a grid of load scenarios: a base scenario, a
// parameter grid crossed over it, a repeat count, and (optionally) extra
// hand-written scenarios appended verbatim. It is the schema of the
// experiments.json file cmd/annotload -experiments consumes.
type Experiments struct {
	// Base is the scenario every grid cell starts from.
	Base Scenario `json:"base"`
	// Grid maps scenario JSON field names (e.g. "mode", "rate",
	// "concurrency") to the values to sweep. The cells are the full cross
	// product over all keys, in sorted-key order.
	Grid map[string][]any `json:"grid"`
	// Repeats runs each cell this many times (default 1), bumping the
	// seed per repeat so repeats are independent but reproducible.
	Repeats int `json:"repeats"`
	// Scenarios are extra standalone scenarios run after the grid.
	Scenarios []Scenario `json:"scenarios"`
}

// Cell is one expanded (scenario, repeat) grid point.
type Cell struct {
	// Name is the cell's label: the base name plus its grid assignment
	// and repeat suffix.
	Name string `json:"name"`
	// Params is the grid assignment that produced the cell (nil for
	// standalone scenarios).
	Params map[string]any `json:"params,omitempty"`
	// Repeat is the zero-based repeat index.
	Repeat int `json:"repeat"`
	// Scenario is the fully resolved configuration the cell runs.
	Scenario Scenario `json:"scenario"`
}

// CellResult pairs a cell with its run report.
type CellResult struct {
	Cell
	// Report is the run's client-side measurement.
	Report *Report `json:"report"`
}

// Cells expands the experiment grid into concrete runnable cells: the
// cross product of Grid over Base (sorted-key order, so expansion is
// deterministic), times Repeats, followed by the standalone Scenarios.
// Unknown grid keys and type mismatches are errors, not silent no-ops.
func (e Experiments) Cells() ([]Cell, error) {
	repeats := e.Repeats
	if repeats <= 0 {
		repeats = 1
	}
	keys := make([]string, 0, len(e.Grid))
	for k := range e.Grid {
		if len(e.Grid[k]) == 0 {
			return nil, fmt.Errorf("load: grid key %q has no values", k)
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)

	assignments := []map[string]any{{}}
	for _, k := range keys {
		next := make([]map[string]any, 0, len(assignments)*len(e.Grid[k]))
		for _, base := range assignments {
			for _, v := range e.Grid[k] {
				a := make(map[string]any, len(base)+1)
				for bk, bv := range base {
					a[bk] = bv
				}
				a[k] = v
				next = append(next, a)
			}
		}
		assignments = next
	}

	// With nothing to sweep, the base itself is the single grid cell —
	// unless standalone scenarios carry the run, in which case a bare
	// base would just duplicate work nobody asked for.
	if len(keys) == 0 && len(e.Scenarios) > 0 {
		assignments = nil
	}

	var cells []Cell
	for _, a := range assignments {
		sc, err := applyParams(e.Base, a)
		if err != nil {
			return nil, err
		}
		name := sc.Name
		if name == "" {
			name = "grid"
		}
		for _, k := range keys {
			name += fmt.Sprintf("/%s=%v", k, a[k])
		}
		for r := 0; r < repeats; r++ {
			cell := sc
			cell.Name = name
			cell.Seed += int64(r) * 7919
			params := a
			if len(params) == 0 {
				params = nil
			}
			cells = append(cells, Cell{Name: name, Params: params, Repeat: r, Scenario: cell.WithDefaults()})
		}
	}
	for i, sc := range e.Scenarios {
		name := sc.Name
		if name == "" {
			name = fmt.Sprintf("scenario-%d", i)
		}
		for r := 0; r < repeats; r++ {
			cell := sc
			cell.Name = name
			cell.Seed += int64(r) * 7919
			cells = append(cells, Cell{Name: name, Repeat: r, Scenario: cell.WithDefaults()})
		}
	}
	for _, c := range cells {
		if err := c.Scenario.Validate(); err != nil {
			return nil, fmt.Errorf("load: cell %s repeat %d: %w", c.Name, c.Repeat, err)
		}
	}
	return cells, nil
}

// applyParams overrides scenario fields by their JSON names, strictly: an
// assignment that does not correspond to a Scenario field (or whose value
// does not decode into it) is an error.
func applyParams(base Scenario, params map[string]any) (Scenario, error) {
	raw, err := json.Marshal(base)
	if err != nil {
		return Scenario{}, err
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		return Scenario{}, err
	}
	for k, v := range params {
		if _, ok := m[k]; !ok {
			return Scenario{}, fmt.Errorf("load: grid key %q is not a scenario field", k)
		}
		m[k] = v
	}
	merged, err := json.Marshal(m)
	if err != nil {
		return Scenario{}, err
	}
	var out Scenario
	dec := json.NewDecoder(bytes.NewReader(merged))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&out); err != nil {
		return Scenario{}, fmt.Errorf("load: grid override does not fit scenario: %w", err)
	}
	return out, nil
}

// RunCells runs the cells sequentially against targets produced by
// newTarget — one fresh target per cell, so cells do not contaminate each
// other's server state. cleanup (when non-nil) is called after the cell's
// run. progress (when non-nil) is told each cell as it starts.
func RunCells(ctx context.Context, cells []Cell,
	newTarget func(Cell) (Target, func() error, error),
	progress func(Cell)) ([]CellResult, error) {
	results := make([]CellResult, 0, len(cells))
	for _, c := range cells {
		if ctx.Err() != nil {
			return results, ctx.Err()
		}
		if progress != nil {
			progress(c)
		}
		tgt, cleanup, err := newTarget(c)
		if err != nil {
			return results, fmt.Errorf("load: cell %s repeat %d: start target: %w", c.Name, c.Repeat, err)
		}
		rep, runErr := Run(ctx, tgt, c.Scenario)
		var cleanErr error
		if cleanup != nil {
			cleanErr = cleanup()
		}
		if runErr != nil {
			return results, fmt.Errorf("load: cell %s repeat %d: %w", c.Name, c.Repeat, runErr)
		}
		if cleanErr != nil {
			return results, fmt.Errorf("load: cell %s repeat %d: stop target: %w", c.Name, c.Repeat, cleanErr)
		}
		results = append(results, CellResult{Cell: c, Report: rep})
	}
	return results, nil
}

// GridSummary is the JSON summary written next to the CSV: every cell
// result plus the parameter keys that varied.
type GridSummary struct {
	// GridKeys are the swept parameter names (sorted).
	GridKeys []string `json:"grid_keys"`
	// Cells are the per-run results in execution order.
	Cells []CellResult `json:"cells"`
}

// Summarize builds the grid summary from results.
func Summarize(results []CellResult) GridSummary {
	keySet := map[string]bool{}
	for _, r := range results {
		for k := range r.Params {
			keySet[k] = true
		}
	}
	keys := make([]string, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return GridSummary{GridKeys: keys, Cells: results}
}

// WriteCSV renders results as one CSV row per run: identity and grid
// parameters first, then throughput, per-endpoint counters and latency
// quantiles, and the SSE digests.
func WriteCSV(w io.Writer, results []CellResult) error {
	keys := Summarize(results).GridKeys
	header := []string{"name", "repeat"}
	for _, k := range keys {
		header = append(header, "param_"+k)
	}
	header = append(header,
		"mode", "corpus", "seed", "followers", "duration_s", "offered_rps", "achieved_rps",
		"completed", "shed", "errors", "seq_regressions",
		"recommend_requests", "recommend_shed", "recommend_p50_ms", "recommend_p99_ms", "recommend_max_ms",
		"correlate_requests", "correlate_shed", "correlate_misses", "correlate_p50_ms", "correlate_p99_ms",
		"annotations_requests", "annotations_shed", "annotations_retries", "annotations_p50_ms", "annotations_p99_ms",
		"tuples_requests", "tuples_shed", "tuples_retries", "tuples_p50_ms", "tuples_p99_ms",
		"sse_subscribers", "sse_events", "sse_gaps", "sse_resumes", "sse_cursor_regressions",
	)
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	for _, r := range results {
		rep := r.Report
		row := []string{r.Name, strconv.Itoa(r.Repeat)}
		for _, k := range keys {
			if v, ok := r.Params[k]; ok {
				row = append(row, fmt.Sprint(v))
			} else {
				row = append(row, "")
			}
		}
		errorsTotal := rep.Recommend.Errors + rep.Correlate.Errors + rep.Annotations.Errors + rep.Tuples.Errors
		row = append(row,
			rep.Scenario.Mode, rep.Scenario.Corpus, strconv.FormatInt(rep.Scenario.Seed, 10),
			strconv.Itoa(rep.Scenario.Followers),
			f(rep.DurationSeconds), f(rep.OfferedRPS), f(rep.AchievedRPS),
			u(rep.Completed), u(rep.TotalShed()), u(errorsTotal), u(rep.SeqRegressions),
			u(rep.Recommend.Requests), u(rep.Recommend.Shed), f(rep.Recommend.P50Millis), f(rep.Recommend.P99Millis), f(rep.Recommend.MaxMillis),
			u(rep.Correlate.Requests), u(rep.Correlate.Shed), u(rep.Correlate.Misses), f(rep.Correlate.P50Millis), f(rep.Correlate.P99Millis),
			u(rep.Annotations.Requests), u(rep.Annotations.Shed), u(rep.Annotations.Retries), f(rep.Annotations.P50Millis), f(rep.Annotations.P99Millis),
			u(rep.Tuples.Requests), u(rep.Tuples.Shed), u(rep.Tuples.Retries), f(rep.Tuples.P50Millis), f(rep.Tuples.P99Millis),
			u(uint64(rep.SSE.Subscribers)), u(rep.SSE.Events), u(rep.SSE.Gaps), u(rep.SSE.Resumes), u(rep.SSE.CursorRegressions),
		)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
