package load

import (
	"context"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"testing"
	"time"

	"annotadb"
)

// soakPhaseSeconds is one phase's duration: the suite runs two phases
// around a kill-and-reopen. ANNOTLOAD_SOAK_SECONDS overrides the total
// (CI's race job raises it to a real soak; the default keeps plain
// go test fast).
func soakPhaseSeconds(t *testing.T) float64 {
	total := 5.0
	if v := os.Getenv("ANNOTLOAD_SOAK_SECONDS"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f <= 0 {
			t.Fatalf("bad ANNOTLOAD_SOAK_SECONDS %q", v)
		}
		total = f
	}
	return total / 2
}

// TestSoakDurableShardedRecovery is the macro soak: a durable 4-shard
// server with the event stream on, under a mixed open-loop load with SSE
// subscribers forced through periodic resumes, killed and reopened midway.
// It asserts, end to end over real HTTP under the race detector:
//
//   - no transport errors and no read-your-writes violations (every
//     /recommend answer's seq is at or above the highest write ack the
//     client had seen) in either phase;
//   - exact shed accounting per phase (client 429s == server Shed delta)
//     and exact admitted-write accounting (client write acks == server
//     Requests delta);
//   - recovery equivalence: the reopened server serves the same relation
//     shape and the same rules as the one that was closed;
//   - the recording subscriber's cursor record — across forced
//     reconnect-resumes and the server restart — is one uninterrupted
//     dense sequence with no gap frames (retention is unbounded) and no
//     regressions;
//   - no goroutine leaks once everything is shut down.
func TestSoakDurableShardedRecovery(t *testing.T) {
	phase := soakPhaseSeconds(t)
	baseGoroutines := runtime.NumGoroutine()
	dir := t.TempDir()
	opts := LocalOptions{
		Corpus:          "metrics",
		Tuples:          1200,
		Seed:            5,
		Shards:          4,
		Dir:             dir,
		Events:          true,
		RetainAllEvents: true,
		// The metrics corpus plants correlations (e.g. img=i0 → cpu:high)
		// at ~0.1 support — far below the paper-default 0.4 threshold, so
		// the soak mines with thresholds matched to the corpus.
		MinSupport:    0.05,
		MinConfidence: 0.5,
	}
	scenario := Scenario{
		Name:                       "soak",
		Mode:                       "open",
		Corpus:                     "metrics",
		DurationSeconds:            phase,
		Rate:                       400,
		ReadFraction:               0.6,
		AnnotateFraction:           0.3,
		TupleFraction:              0.1,
		Subscribers:                2,
		SubscriberReconnectSeconds: 0.8,
		MaxRetries:                 2,
		Seed:                       11,
	}

	tr := http.DefaultTransport.(*http.Transport).Clone()
	subClient := &http.Client{Transport: tr}
	defer subClient.CloseIdleConnections()

	// --- phase 1: fresh server -----------------------------------------
	l1, err := StartLocal(opts)
	if err != nil {
		t.Fatal(err)
	}
	// The recording subscriber attaches before any churn happens (a
	// cursor-less subscription starts live), so its record must cover the
	// event log from the first event on. Forced reconnects every 600ms
	// push it through the Last-Event-ID resume path over and over.
	sub1 := newSSEClient(l1.URL, subClient, 600*time.Millisecond, true)
	subCtx1, cancelSub1 := context.WithCancel(context.Background())
	sub1Done := make(chan struct{})
	go func() { defer close(sub1Done); sub1.run(subCtx1) }()
	time.Sleep(50 * time.Millisecond)

	rep1, err := Run(context.Background(), Target{BaseURL: l1.URL}, scenario)
	if err != nil {
		t.Fatal(err)
	}
	checkPhase(t, "phase 1", rep1)
	stats1 := l1.Server.Stats()
	checkShardedAccounting(t, "phase 1", rep1, stats1.Shed, stats1.Requests)
	if stats1.Shards != 4 {
		t.Fatalf("server runs %d shards, want 4", stats1.Shards)
	}
	rules1 := renderedRuleSet(l1.Server)
	if len(rules1) == 0 {
		t.Fatal("phase 1 ended with no mined rules; the corpus or thresholds are off")
	}

	// Let the subscriber catch up to the full event record, then kill.
	waitCaughtUp(t, sub1, l1)
	cancelSub1()
	<-sub1Done
	mustClose(t, l1)

	// --- reopen: recovery must reproduce the closed server -------------
	l2, err := StartLocal(opts)
	if err != nil {
		t.Fatalf("reopen %s: %v", dir, err)
	}
	dur := l2.Server.Durability()
	if dur == nil {
		t.Fatal("reopened server reports no durability stats")
	}
	if !dur.Recovery.FromCheckpoint {
		t.Errorf("clean close + reopen bootstrapped instead of recovering from checkpoints")
	}
	if dur.Recovery.Shards != 4 {
		t.Errorf("recovered %d shards, want 4", dur.Recovery.Shards)
	}
	stats2 := l2.Server.Stats()
	if stats2.Tuples != stats1.Tuples || stats2.Attachments != stats1.Attachments ||
		stats2.DistinctAnnotations != stats1.DistinctAnnotations {
		t.Fatalf("recovered relation (%d tuples, %d attachments, %d annotations) differs from the killed server's (%d, %d, %d)",
			stats2.Tuples, stats2.Attachments, stats2.DistinctAnnotations,
			stats1.Tuples, stats1.Attachments, stats1.DistinctAnnotations)
	}
	rules2 := renderedRuleSet(l2.Server)
	if len(rules1) != len(rules2) {
		t.Fatalf("recovered server mines %d rules, killed server had %d", len(rules2), len(rules1))
	}
	for i := range rules1 {
		if rules1[i] != rules2[i] {
			t.Fatalf("recovered rule %d differs:\n  before: %s\n  after:  %s", i, rules1[i], rules2[i])
		}
	}

	// --- phase 2: load the recovered server, subscriber resumes across
	// the restart (durable cursors survive a clean restart) -------------
	sub2 := newSSEClient(l2.URL, subClient, 600*time.Millisecond, true)
	sub2.lastCursor.Store(sub1.lastCursor.Load())
	subCtx2, cancelSub2 := context.WithCancel(context.Background())
	sub2Done := make(chan struct{})
	go func() { defer close(sub2Done); sub2.run(subCtx2) }()

	sc2 := scenario
	sc2.Seed = 12
	rep2, err := Run(context.Background(), Target{BaseURL: l2.URL}, sc2)
	if err != nil {
		t.Fatal(err)
	}
	checkPhase(t, "phase 2", rep2)
	stats3 := l2.Server.Stats()
	checkShardedAccounting(t, "phase 2", rep2, stats3.Shed-stats2.Shed, stats3.Requests-stats2.Requests)

	waitCaughtUp(t, sub2, l2)
	cancelSub2()
	<-sub2Done
	mustClose(t, l2)

	// --- the uninterrupted event record --------------------------------
	if n := sub1.gaps.Load() + sub2.gaps.Load(); n != 0 {
		t.Fatalf("%d gap frames under unbounded retention; resumes lost history", n)
	}
	if n := sub1.regressions.Load() + sub2.regressions.Load(); n != 0 {
		t.Fatalf("%d cursor regressions on the recording subscribers", n)
	}
	if sub1.resumes.Load() == 0 || sub2.resumes.Load() == 0 {
		t.Fatalf("forced reconnects performed no resumes (%d, %d); the resume path went unexercised",
			sub1.resumes.Load(), sub2.resumes.Load())
	}
	record := append(sub1.Cursors(), sub2.Cursors()...)
	if len(record) == 0 {
		t.Fatal("recording subscribers saw no events")
	}
	for i := 1; i < len(record); i++ {
		if record[i] != record[i-1]+1 {
			t.Fatalf("event record breaks at %d: cursor %d follows %d — resume replay skipped or repeated history",
				i, record[i], record[i-1])
		}
	}

	// --- goroutine leak check ------------------------------------------
	subClient.CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseGoroutines+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d live, started with %d\n%s",
				runtime.NumGoroutine(), baseGoroutines, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// checkShardedAccounting applies the sharded write-accounting contract: a
// client write fans out to one per-shard request per touched annotation
// family (tuple appends replicate to every shard), so the server's
// Requests and Shed counters dominate — never trail — the client-side
// counts, and a shard never sheds invisibly (any shard shed surfaces as a
// client 429). The exact 1:1 contract is the unsharded
// TestOverloadAccountingExact's.
func checkShardedAccounting(t *testing.T, phase string, rep *Report, serverShed, serverRequests uint64) {
	t.Helper()
	clientAcks := rep.Annotations.Requests + rep.Tuples.Requests
	if serverRequests < clientAcks {
		t.Fatalf("%s: server admitted %d per-shard writes but clients got %d acks — acks without admission", phase, serverRequests, clientAcks)
	}
	if serverShed < rep.TotalShed() {
		t.Fatalf("%s: server shed %d but clients saw %d 429s — 429s without sheds", phase, serverShed, rep.TotalShed())
	}
	if serverShed > 0 && rep.TotalShed() == 0 {
		t.Fatalf("%s: server shed %d per-shard writes invisibly (no client saw a 429)", phase, serverShed)
	}
}

// checkPhase applies the per-phase invariants every soak phase must hold.
func checkPhase(t *testing.T, phase string, rep *Report) {
	t.Helper()
	if rep.Completed == 0 {
		t.Fatalf("%s: no completed requests", phase)
	}
	if n := rep.Recommend.Errors + rep.Annotations.Errors + rep.Tuples.Errors; n != 0 {
		t.Fatalf("%s: %d transport errors", phase, n)
	}
	if rep.SeqRegressions != 0 {
		t.Fatalf("%s: %d read-your-writes violations", phase, rep.SeqRegressions)
	}
	if rep.SSE.CursorRegressions != 0 {
		t.Fatalf("%s: %d SSE cursor regressions on the load subscribers", phase, rep.SSE.CursorRegressions)
	}
	t.Logf("%s: %d completed (%.0f req/s), %d shed, %d retries, sse %d events / %d resumes",
		phase, rep.Completed, rep.AchievedRPS, rep.TotalShed(),
		rep.Annotations.Retries+rep.Tuples.Retries, rep.SSE.Events, rep.SSE.Resumes)
}

// waitCaughtUp waits until the recording subscriber has consumed the
// durable event log's whole tail (its periodic resume loop replays
// anything the in-flight connection missed).
func waitCaughtUp(t *testing.T, c *sseClient, l *Local) {
	t.Helper()
	dur := l.Server.Durability()
	if dur == nil || dur.Events == nil {
		t.Fatal("no durable event log to catch up against")
	}
	target := dur.Events.NextCursor - 1
	deadline := time.Now().Add(15 * time.Second)
	for c.lastCursor.Load() < target {
		if time.Now().After(deadline) {
			t.Fatalf("subscriber stuck at cursor %d of %d", c.lastCursor.Load(), target)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// renderedRuleSet renders a server's rules to sorted strings, the form
// the recovery-equivalence comparison uses.
func renderedRuleSet(s *annotadb.Server) []string {
	rules := s.Rules()
	out := make([]string, len(rules))
	for i, r := range rules {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}
