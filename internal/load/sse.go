package load

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// sseClient is one long-lived GET /events subscriber. It reconnects with
// Last-Event-ID whenever its stream ends (counting each reconnect as a
// resume), counts gap frames, and checks that cursors strictly advance
// across the whole subscription — including across resumes, where the
// server must replay from exactly the next cursor.
type sseClient struct {
	base   string
	client *http.Client
	// reconnectEvery > 0 drops the stream on that period to exercise the
	// resume path even when the server never closes it.
	reconnectEvery time.Duration

	events      atomic.Uint64
	gaps        atomic.Uint64
	resumes     atomic.Uint64
	regressions atomic.Uint64
	lastCursor  atomic.Uint64

	// record holds every non-gap cursor observed, in order, when
	// recording is on (the soak test replays it against the durable event
	// log).
	recording bool
	mu        sync.Mutex
	record    []uint64
}

func newSSEClient(base string, client *http.Client, reconnectEvery time.Duration, recording bool) *sseClient {
	return &sseClient{base: base, client: client, reconnectEvery: reconnectEvery, recording: recording}
}

// Cursors returns a copy of the recorded cursor sequence.
func (c *sseClient) Cursors() []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]uint64, len(c.record))
	copy(out, c.record)
	return out
}

// run subscribes until ctx is canceled, reconnecting (with resume) as
// needed.
func (c *sseClient) run(ctx context.Context) {
	first := true
	for ctx.Err() == nil {
		if !first {
			c.resumes.Add(1)
		}
		c.subscribeOnce(ctx)
		first = false
		// Brief pause before reconnecting so a refusing server (stream
		// disabled, shutting down) is not hammered.
		select {
		case <-ctx.Done():
			return
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// subscribeOnce holds one stream until it ends, the reconnect period
// elapses, or ctx is canceled.
func (c *sseClient) subscribeOnce(ctx context.Context) {
	connCtx := ctx
	var cancel context.CancelFunc
	if c.reconnectEvery > 0 {
		connCtx, cancel = context.WithTimeout(ctx, c.reconnectEvery)
	} else {
		connCtx, cancel = context.WithCancel(ctx)
	}
	defer cancel()
	req, err := http.NewRequestWithContext(connCtx, http.MethodGet, c.base+"/events", nil)
	if err != nil {
		return
	}
	if last := c.lastCursor.Load(); last > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(last, 10))
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev struct {
			Cursor uint64 `json:"cursor"`
			Kind   string `json:"kind"`
		}
		if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
			continue
		}
		if ev.Kind == "gap" {
			c.gaps.Add(1)
			continue
		}
		c.events.Add(1)
		if prev := c.lastCursor.Load(); ev.Cursor <= prev {
			c.regressions.Add(1)
		}
		c.lastCursor.Store(ev.Cursor)
		if c.recording {
			c.mu.Lock()
			c.record = append(c.record, ev.Cursor)
			c.mu.Unlock()
		}
	}
}
