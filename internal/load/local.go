package load

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"annotadb"
	"annotadb/internal/httpapi"
	"annotadb/internal/workload"
)

// LocalOptions configure StartLocal's in-process server: the same
// construction paths cmd/annotserve uses (in-memory, in-memory sharded,
// or durable), seeded from a generated corpus instead of a dataset file.
type LocalOptions struct {
	// Corpus and Tuples describe the seed relation ("paper" × 2000 when
	// zero); Seed drives its generation.
	Corpus string
	Tuples int
	Seed   int64
	// Shards > 1 partitions the write path by annotation family.
	Shards int
	// Dir, when non-empty, makes the server durable (WAL + checkpoints in
	// Dir; reopening the same Dir recovers instead of re-seeding).
	Dir string
	// QueueDepth, BatchWindow, and FlushWindow tune the write path
	// (admission queue bound, coalescing linger, WAL group commit).
	QueueDepth  int
	BatchWindow time.Duration
	FlushWindow time.Duration
	// Events serves GET /events; RetainAllEvents disables event-segment
	// retention trimming so any cursor stays resumable (what a test that
	// replays the full event record needs).
	Events          bool
	RetainAllEvents bool
	// MinSupport and MinConfidence are the mining thresholds (paper
	// defaults 0.4 / 0.8 when zero).
	MinSupport    float64
	MinConfidence float64
}

// Local is an in-process annotserve equivalent: the production Server
// behind the production internal/httpapi handler on a real loopback
// listener.
type Local struct {
	// Server is the serving core (for Stats, Durability, Subscribe).
	Server *annotadb.Server
	// URL is the base URL of the loopback listener.
	URL string

	httpSrv     *http.Server
	ln          net.Listener
	stopStreams context.CancelFunc
	serveErr    chan error
}

// StartLocal boots an in-process server per the options. Close releases
// it; a non-empty Dir can then be reopened by a later StartLocal to
// exercise recovery.
func StartLocal(o LocalOptions) (*Local, error) {
	if o.Tuples <= 0 {
		o.Tuples = 2000
	}
	if o.MinSupport == 0 {
		o.MinSupport = 0.4
	}
	if o.MinConfidence == 0 {
		o.MinConfidence = 0.8
	}
	opts := annotadb.Options{MinSupport: o.MinSupport, MinConfidence: o.MinConfidence}
	retain := 0
	if o.RetainAllEvents {
		retain = -1
	}
	sopts := annotadb.ServeOptions{
		BatchWindow: o.BatchWindow,
		QueueDepth:  o.QueueDepth,
		Shards:      o.Shards,
		Stream: annotadb.StreamOptions{
			Disabled:       !o.Events,
			RetainSegments: retain,
			FlushWindow:    o.FlushWindow,
		},
	}
	seedDataset := func() (*annotadb.Dataset, error) {
		stream, err := workload.NewStream(o.Corpus, o.Seed)
		if err != nil {
			return nil, err
		}
		ds := annotadb.NewDataset()
		for i, tu := range stream.Base(o.Tuples) {
			if _, err := ds.AddTuple(tu.Values, tu.Annotations); err != nil {
				return nil, fmt.Errorf("load: seed tuple %d: %w", i, err)
			}
		}
		return ds, nil
	}
	var (
		srv *annotadb.Server
		err error
	)
	switch {
	case o.Dir != "":
		var ds *annotadb.Dataset
		if !annotadb.HasDurableState(o.Dir) {
			if ds, err = seedDataset(); err != nil {
				return nil, err
			}
		} else {
			ds = annotadb.NewDataset()
		}
		eng, _, derr := annotadb.OpenDurableDataset(ds, opts, annotadb.DurabilityOptions{
			Dir:         o.Dir,
			Shards:      o.Shards,
			FlushWindow: o.FlushWindow,
		})
		if derr != nil {
			return nil, derr
		}
		srv, err = annotadb.NewServer(eng, sopts)
	case o.Shards > 1:
		var ds *annotadb.Dataset
		if ds, err = seedDataset(); err != nil {
			return nil, err
		}
		srv, err = annotadb.NewShardedServer(ds, opts, sopts)
	default:
		var ds *annotadb.Dataset
		if ds, err = seedDataset(); err != nil {
			return nil, err
		}
		var eng *annotadb.Engine
		eng, err = annotadb.NewEngine(ds, opts)
		if err == nil {
			srv, err = annotadb.NewServer(eng, sopts)
		}
	}
	if err != nil {
		return nil, err
	}

	streamCtx, stopStreams := context.WithCancel(context.Background())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		stopStreams()
		closeCtx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = srv.Close(closeCtx)
		return nil, err
	}
	hs := &http.Server{Handler: httpapi.New(srv, streamCtx)}
	l := &Local{
		Server:      srv,
		URL:         "http://" + ln.Addr().String(),
		httpSrv:     hs,
		ln:          ln,
		stopStreams: stopStreams,
		serveErr:    make(chan error, 1),
	}
	go func() { l.serveErr <- hs.Serve(ln) }()
	return l, nil
}

// Close shuts the server down the way cmd/annotserve does: event streams
// first (they never end on their own), then in-flight HTTP draining, then
// the serving core (queued update batches drain; a durable server writes
// its final checkpoint).
func (l *Local) Close(ctx context.Context) error {
	l.stopStreams()
	shutdownErr := l.httpSrv.Shutdown(ctx)
	closeErr := l.Server.Close(ctx)
	<-l.serveErr
	if shutdownErr != nil {
		return shutdownErr
	}
	return closeErr
}
