package load

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"annotadb"
	"annotadb/internal/httpapi"
	"annotadb/internal/workload"
)

// LocalOptions configure StartLocal's in-process server: the same
// construction paths cmd/annotserve uses (in-memory, in-memory sharded,
// or durable), seeded from a generated corpus instead of a dataset file.
type LocalOptions struct {
	// Corpus and Tuples describe the seed relation ("paper" × 2000 when
	// zero); Seed drives its generation.
	Corpus string
	Tuples int
	Seed   int64
	// Shards > 1 partitions the write path by annotation family.
	Shards int
	// Dir, when non-empty, makes the server durable (WAL + checkpoints in
	// Dir; reopening the same Dir recovers instead of re-seeding).
	Dir string
	// QueueDepth, BatchWindow, and FlushWindow tune the write path
	// (admission queue bound, coalescing linger, WAL group commit).
	QueueDepth  int
	BatchWindow time.Duration
	FlushWindow time.Duration
	// Events serves GET /events; RetainAllEvents disables event-segment
	// retention trimming so any cursor stays resumable (what a test that
	// replays the full event record needs).
	Events          bool
	RetainAllEvents bool
	// Followers boots this many read replicas behind the primary: each is
	// an annotadb.Follow server tailing the primary's replication endpoints,
	// behind its own httpapi loopback listener, listed in Local.ReadURLs.
	// Replication needs an unsharded durable primary, so Followers > 0
	// rejects Shards > 1 and — when Dir is empty — uses a temporary
	// directory that Close removes.
	Followers int
	// ReadRate caps admitted reads per second on each instance — primary
	// and every follower alike (httpapi.Options.ReadRate; 0 = unlimited).
	ReadRate float64
	// Correlate starts the churn-anomaly detector on the primary (and on
	// each follower, from its replicated stream); AnomalyWindow and
	// AnomalyThreshold tune it (annotadb.CorrelateOptions). GET /correlate
	// anchor queries are always served regardless.
	Correlate        bool
	AnomalyWindow    time.Duration
	AnomalyThreshold float64
	// MinSupport and MinConfidence are the mining thresholds (paper
	// defaults 0.4 / 0.8 when zero).
	MinSupport    float64
	MinConfidence float64
}

// Local is an in-process annotserve equivalent: the production Server
// behind the production internal/httpapi handler on a real loopback
// listener.
type Local struct {
	// Server is the serving core (for Stats, Durability, Subscribe).
	Server *annotadb.Server
	// URL is the base URL of the loopback listener.
	URL string
	// ReadURLs are the read endpoints in rotation order: the primary URL
	// followed by one URL per follower (just the primary when
	// LocalOptions.Followers was zero). Hand them to Target.ReadURLs.
	ReadURLs []string

	httpSrv     *http.Server
	ln          net.Listener
	stopStreams context.CancelFunc
	serveErr    chan error
	followers   []*localFollower
	ownsDir     string
}

// localFollower is one read replica: a Follow server behind its own
// loopback listener.
type localFollower struct {
	srv      *annotadb.Server
	url      string
	httpSrv  *http.Server
	ln       net.Listener
	serveErr chan error
}

// StartLocal boots an in-process server per the options. Close releases
// it; a non-empty Dir can then be reopened by a later StartLocal to
// exercise recovery.
func StartLocal(o LocalOptions) (*Local, error) {
	if o.Tuples <= 0 {
		o.Tuples = 2000
	}
	ownsDir := ""
	if o.Followers > 0 {
		if o.Shards > 1 {
			return nil, errors.New("load: followers require an unsharded durable primary")
		}
		if o.Dir == "" {
			dir, err := os.MkdirTemp("", "annotload-replica-")
			if err != nil {
				return nil, err
			}
			o.Dir, ownsDir = dir, dir
		}
	}
	fail := func(err error) (*Local, error) {
		if ownsDir != "" {
			os.RemoveAll(ownsDir) //nolint:errcheck
		}
		return nil, err
	}
	if o.MinSupport == 0 {
		o.MinSupport = 0.4
	}
	if o.MinConfidence == 0 {
		o.MinConfidence = 0.8
	}
	opts := annotadb.Options{MinSupport: o.MinSupport, MinConfidence: o.MinConfidence}
	retain := 0
	if o.RetainAllEvents {
		retain = -1
	}
	sopts := annotadb.ServeOptions{
		BatchWindow: o.BatchWindow,
		QueueDepth:  o.QueueDepth,
		Shards:      o.Shards,
		Stream: annotadb.StreamOptions{
			Disabled:       !o.Events,
			RetainSegments: retain,
			FlushWindow:    o.FlushWindow,
		},
		Correlate: annotadb.CorrelateOptions{
			Anomalies:        o.Correlate && o.Events,
			AnomalyWindow:    o.AnomalyWindow,
			AnomalyThreshold: o.AnomalyThreshold,
		},
	}
	seedDataset := func() (*annotadb.Dataset, error) {
		stream, err := workload.NewStream(o.Corpus, o.Seed)
		if err != nil {
			return nil, err
		}
		ds := annotadb.NewDataset()
		for i, tu := range stream.Base(o.Tuples) {
			if _, err := ds.AddTuple(tu.Values, tu.Annotations); err != nil {
				return nil, fmt.Errorf("load: seed tuple %d: %w", i, err)
			}
		}
		return ds, nil
	}
	var (
		srv *annotadb.Server
		err error
	)
	switch {
	case o.Dir != "":
		var ds *annotadb.Dataset
		if !annotadb.HasDurableState(o.Dir) {
			if ds, err = seedDataset(); err != nil {
				return fail(err)
			}
		} else {
			ds = annotadb.NewDataset()
		}
		eng, _, derr := annotadb.OpenDurableDataset(ds, opts, annotadb.DurabilityOptions{
			Dir:         o.Dir,
			Shards:      o.Shards,
			FlushWindow: o.FlushWindow,
		})
		if derr != nil {
			return fail(derr)
		}
		srv, err = annotadb.NewServer(eng, sopts)
	case o.Shards > 1:
		var ds *annotadb.Dataset
		if ds, err = seedDataset(); err != nil {
			return nil, err
		}
		srv, err = annotadb.NewShardedServer(ds, opts, sopts)
	default:
		var ds *annotadb.Dataset
		if ds, err = seedDataset(); err != nil {
			return nil, err
		}
		var eng *annotadb.Engine
		eng, err = annotadb.NewEngine(ds, opts)
		if err == nil {
			srv, err = annotadb.NewServer(eng, sopts)
		}
	}
	if err != nil {
		return fail(err)
	}

	streamCtx, stopStreams := context.WithCancel(context.Background())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		stopStreams()
		closeCtx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = srv.Close(closeCtx)
		return fail(err)
	}
	hs := &http.Server{Handler: httpapi.NewWithOptions(srv, streamCtx, httpapi.Options{ReadRate: o.ReadRate})}
	l := &Local{
		Server:      srv,
		URL:         "http://" + ln.Addr().String(),
		httpSrv:     hs,
		ln:          ln,
		stopStreams: stopStreams,
		serveErr:    make(chan error, 1),
		ownsDir:     ownsDir,
	}
	go func() { l.serveErr <- hs.Serve(ln) }()

	l.ReadURLs = []string{l.URL}
	for i := 0; i < o.Followers; i++ {
		f, ferr := startLocalFollower(l.URL, opts, sopts, o.ReadRate, streamCtx)
		if ferr != nil {
			closeCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = l.Close(closeCtx)
			return nil, fmt.Errorf("load: start follower %d: %w", i, ferr)
		}
		l.followers = append(l.followers, f)
		l.ReadURLs = append(l.ReadURLs, f.url)
	}
	return l, nil
}

// startLocalFollower boots one read replica of the primary at primaryURL:
// annotadb.Follow with a tight poll (the harness wants convergence well
// inside a run's duration) behind the production handler on its own
// loopback listener.
func startLocalFollower(primaryURL string, opts annotadb.Options, sopts annotadb.ServeOptions, readRate float64, streamCtx context.Context) (*localFollower, error) {
	srv, err := annotadb.Follow(opts, sopts, annotadb.FollowOptions{
		Primary:    primaryURL,
		Poll:       5 * time.Millisecond,
		MaxBackoff: 500 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		closeCtx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = srv.Close(closeCtx)
		return nil, err
	}
	f := &localFollower{
		srv:      srv,
		url:      "http://" + ln.Addr().String(),
		httpSrv:  &http.Server{Handler: httpapi.NewWithOptions(srv, streamCtx, httpapi.Options{ReadRate: readRate})},
		ln:       ln,
		serveErr: make(chan error, 1),
	}
	go func() { f.serveErr <- f.httpSrv.Serve(ln) }()
	return f, nil
}

// Close shuts the server down the way cmd/annotserve does: event streams
// first (they never end on their own), then the followers (projections of
// the primary — closing them cannot lose writes), then in-flight HTTP
// draining, then the serving core (queued update batches drain; a durable
// server writes its final checkpoint).
func (l *Local) Close(ctx context.Context) error {
	l.stopStreams()
	var followerErr error
	for _, f := range l.followers {
		if err := f.httpSrv.Shutdown(ctx); err != nil && followerErr == nil {
			followerErr = err
		}
		if err := f.srv.Close(ctx); err != nil && followerErr == nil {
			followerErr = err
		}
		<-f.serveErr
	}
	shutdownErr := l.httpSrv.Shutdown(ctx)
	closeErr := l.Server.Close(ctx)
	<-l.serveErr
	if l.ownsDir != "" {
		if err := os.RemoveAll(l.ownsDir); err != nil && closeErr == nil {
			closeErr = err
		}
	}
	if shutdownErr != nil {
		return shutdownErr
	}
	if closeErr != nil {
		return closeErr
	}
	return followerErr
}
