package load

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// replicatedLocal boots a durable primary with n followers on the metrics
// corpus (its planted correlations keep the rule set non-trivial at low
// thresholds). Every cell is durable — including n = 0 — so follower
// counts compare against the same primary construction.
func replicatedLocal(t testing.TB, n int) *Local {
	t.Helper()
	l, err := StartLocal(LocalOptions{
		Corpus:        "metrics",
		Tuples:        800,
		Seed:          1,
		Dir:           t.TempDir(),
		Followers:     n,
		MinSupport:    0.05,
		MinConfidence: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := l.Close(ctx); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return l
}

// TestReplicatedLocalServesBarrierReads drives a mixed workload against a
// primary plus one follower: reads round-robin across both carrying the
// min_seq barrier, so zero seq regressions and zero read errors mean the
// follower honored read-your-writes under live writes.
func TestReplicatedLocalServesBarrierReads(t *testing.T) {
	l := replicatedLocal(t, 1)
	if len(l.ReadURLs) != 2 {
		t.Fatalf("ReadURLs = %v, want primary + 1 follower", l.ReadURLs)
	}
	rep, err := Run(context.Background(), Target{BaseURL: l.URL, ReadURLs: l.ReadURLs}, Scenario{
		Name:             "replica-mixed",
		Mode:             "closed",
		Corpus:           "metrics",
		DurationSeconds:  1,
		Concurrency:      4,
		ReadFraction:     0.7,
		AnnotateFraction: 0.2,
		TupleFraction:    0.1,
		MaxRetries:       2,
		Followers:        1,
		Seed:             7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recommend.Requests == 0 {
		t.Error("no reads completed")
	}
	if rep.Recommend.Errors != 0 {
		t.Errorf("%d read errors (local barrier reads should never time out)", rep.Recommend.Errors)
	}
	if rep.SeqRegressions != 0 {
		t.Errorf("%d seq regressions across replicated reads", rep.SeqRegressions)
	}
	if rep.Annotations.Errors != 0 || rep.Tuples.Errors != 0 {
		t.Errorf("write errors: annotations %d, tuples %d", rep.Annotations.Errors, rep.Tuples.Errors)
	}
}

// BenchmarkReplicaReadScaling measures aggregate closed-loop 2xx
// /recommend throughput as read replicas are added behind one durable
// primary. Every instance enforces the same per-instance read admission
// cap (the deployment-shaped constraint: each replica owns its capacity
// and sheds beyond it), so the aggregate admitted throughput — the req/s
// metric — grows with the follower count even though all instances share
// this machine's CPU. Each iteration is a fixed one-second read-only run.
func BenchmarkReplicaReadScaling(b *testing.B) {
	const perInstanceRate = 2000
	for _, followers := range []int{0, 1, 2} {
		b.Run(fmt.Sprintf("followers=%d", followers), func(b *testing.B) {
			l, err := StartLocal(LocalOptions{
				Corpus:        "metrics",
				Tuples:        800,
				Seed:          1,
				Dir:           b.TempDir(),
				Followers:     followers,
				ReadRate:      perInstanceRate,
				MinSupport:    0.05,
				MinConfidence: 0.5,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				if err := l.Close(ctx); err != nil {
					b.Errorf("close: %v", err)
				}
			})
			sc := Scenario{
				Name:            "replica-read-scaling",
				Mode:            "closed",
				Corpus:          "metrics",
				DurationSeconds: 1,
				Concurrency:     16,
				ReadFraction:    1,
				Followers:       followers,
				ReadRate:        perInstanceRate,
				Seed:            1,
			}
			tgt := Target{BaseURL: l.URL, ReadURLs: l.ReadURLs}
			var total float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := Run(context.Background(), tgt, sc)
				if err != nil {
					b.Fatal(err)
				}
				if rep.SeqRegressions != 0 {
					b.Fatalf("%d seq regressions", rep.SeqRegressions)
				}
				total += rep.AchievedRPS
			}
			b.ReportMetric(total/float64(b.N), "req/s")
		})
	}
}
