package load

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"
)

// TestRunClosedLoop drives an in-process in-memory server with the full
// mixed closed-loop harness and checks the report's basic sanity: work
// completed, no transport errors, and no read-your-writes violations.
func TestRunClosedLoop(t *testing.T) {
	l, err := StartLocal(LocalOptions{Corpus: "metrics", Tuples: 500, Seed: 1, Events: true})
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, l)
	rep, err := Run(context.Background(), Target{BaseURL: l.URL}, Scenario{
		Name: "closed-smoke", Corpus: "metrics", DurationSeconds: 1,
		Concurrency: 4, Subscribers: 2, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed == 0 {
		t.Fatal("no completed requests")
	}
	if n := rep.Recommend.Errors + rep.Annotations.Errors + rep.Tuples.Errors; n != 0 {
		t.Fatalf("%d transport errors during smoke run", n)
	}
	if rep.SeqRegressions != 0 {
		t.Fatalf("%d read-your-writes violations", rep.SeqRegressions)
	}
	if rep.SSE.Events == 0 {
		t.Fatal("subscribers saw no churn events under a write-bearing mix")
	}
	if rep.SSE.CursorRegressions != 0 {
		t.Fatalf("%d SSE cursor regressions", rep.SSE.CursorRegressions)
	}
	if rep.Recommend.P99Millis < rep.Recommend.P50Millis {
		t.Fatalf("p99 %.3fms below p50 %.3fms", rep.Recommend.P99Millis, rep.Recommend.P50Millis)
	}
}

// TestRunOpenLoop checks the open loop's defining property: achieved
// throughput tracks the offered rate (not the server's capacity) when the
// server is unsaturated.
func TestRunOpenLoop(t *testing.T) {
	l, err := StartLocal(LocalOptions{Corpus: "paper", Tuples: 500, Seed: 2, Events: true})
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, l)
	rep, err := Run(context.Background(), Target{BaseURL: l.URL}, Scenario{
		Name: "open-smoke", Mode: "open", Rate: 300, Corpus: "paper",
		DurationSeconds: 1.5, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OfferedRPS < 100 {
		t.Fatalf("offered %.1f req/s is far below the 300 req/s arrival rate", rep.OfferedRPS)
	}
	// The server handles >5k req/s closed-loop, so at 300 offered the
	// achieved rate should track offered closely.
	if rep.AchievedRPS < rep.OfferedRPS*0.8 {
		t.Fatalf("achieved %.1f req/s lags offered %.1f req/s on an unsaturated server",
			rep.AchievedRPS, rep.OfferedRPS)
	}
}

// TestRunValidates checks the harness rejects unrunnable scenarios and an
// empty target before generating load.
func TestRunValidates(t *testing.T) {
	if _, err := Run(context.Background(), Target{BaseURL: "http://127.0.0.1:0"}, Scenario{Mode: "sideways"}); err == nil {
		t.Fatal("bad mode accepted")
	}
	if _, err := Run(context.Background(), Target{BaseURL: "http://127.0.0.1:0"}, Scenario{Corpus: "nope"}); err == nil {
		t.Fatal("bad corpus accepted")
	}
}

// TestExperimentsCells checks grid expansion: full cross product in
// sorted-key order, per-repeat seed bumps, standalone scenarios appended,
// and strict rejection of unknown grid keys.
func TestExperimentsCells(t *testing.T) {
	exp := Experiments{
		Base: Scenario{Name: "g", Seed: 10, Corpus: "metrics"},
		Grid: map[string][]any{
			"mode": []any{"closed", "open"},
			"rate": []any{100.0, 400.0},
		},
		Repeats:   2,
		Scenarios: []Scenario{{Name: "extra", Corpus: "paper"}},
	}
	cells, err := exp.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if want := 2*2*2 + 2; len(cells) != want {
		t.Fatalf("got %d cells, want %d", len(cells), want)
	}
	if cells[0].Name != "g/mode=closed/rate=100" {
		t.Fatalf("unexpected first cell name %q", cells[0].Name)
	}
	if cells[0].Scenario.Seed == cells[1].Scenario.Seed {
		t.Fatal("repeats share a seed")
	}
	if cells[0].Scenario.Rate != 100 || cells[2].Scenario.Rate != 400 {
		t.Fatalf("rate override not applied: %v, %v", cells[0].Scenario.Rate, cells[2].Scenario.Rate)
	}
	if got := cells[len(cells)-1].Name; got != "extra" {
		t.Fatalf("standalone scenario missing from tail: %q", got)
	}

	bad := Experiments{Base: exp.Base, Grid: map[string][]any{"warp_factor": []any{9}}}
	if _, err := bad.Cells(); err == nil {
		t.Fatal("unknown grid key accepted")
	}
	badType := Experiments{Base: exp.Base, Grid: map[string][]any{"rate": []any{"fast"}}}
	if _, err := badType.Cells(); err == nil {
		t.Fatal("mistyped grid value accepted")
	}
}

// TestWriteCSV checks the CSV rendering: one row per result, parameter
// columns present, parseable floats.
func TestWriteCSV(t *testing.T) {
	results := []CellResult{{
		Cell: Cell{Name: "c", Params: map[string]any{"rate": 100.0}, Repeat: 0,
			Scenario: Scenario{Mode: "open", Corpus: "paper", Seed: 3}},
		Report: &Report{
			Scenario:    Scenario{Mode: "open", Corpus: "paper", Seed: 3},
			Completed:   10,
			AchievedRPS: 5,
			Recommend:   EndpointReport{Requests: 10, P50Millis: 1.25},
		},
	}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d CSV lines, want header + 1 row", len(lines))
	}
	if !strings.Contains(lines[0], "param_rate") {
		t.Fatalf("header lacks the swept parameter column: %q", lines[0])
	}
	if !strings.Contains(lines[1], "1.250") {
		t.Fatalf("row lacks the p50 value: %q", lines[1])
	}
}

func mustClose(t *testing.T, l *Local) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := l.Close(ctx); err != nil {
		t.Errorf("close local server: %v", err)
	}
}
