// Package load is the macro load harness: a closed-loop and open-loop
// HTTP load generator that drives an annotserve-compatible target with a
// configurable mix of GET /recommend reads, GET /correlate anchor queries,
// POST /annotations and POST /tuples writes, and long-lived SSE GET /events
// subscribers.
//
// The generator honors 429 Retry-After with jittered backoff, measures
// client-side latency per endpoint on the repository's log-scale
// histograms, and reports achieved vs offered throughput, shed counts,
// SSE gap/resume counts, and read-your-writes violations (a /recommend
// answer whose seq is below the largest write-acked seq observed before
// the read was issued). Traffic content comes from internal/workload
// corpus streams, so a run is deterministic in (corpus, seed) — the grid
// runner in grid.go leans on that for reproducible experiments.
//
// The same machinery doubles as a test fixture: StartLocal boots a real
// in-process server behind the production internal/httpapi handler, which
// is how the soak and overload-accounting suites drive it under -race.
package load

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	neturl "net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"annotadb/internal/metrics"
	"annotadb/internal/workload"
)

// Scenario configures one load run. The zero value is not runnable; see
// WithDefaults for the fallbacks applied to unset fields.
type Scenario struct {
	// Name labels the run in reports and CSV rows.
	Name string `json:"name"`
	// Mode is "closed" (Concurrency workers, each issuing its next
	// request after the previous response — throughput adapts to the
	// server) or "open" (arrivals at the fixed Rate regardless of
	// responses — latency under offered, not adaptive, load).
	Mode string `json:"mode"`
	// Corpus names the workload.Stream traffic shape: "paper", "metrics",
	// or "linguistic".
	Corpus string `json:"corpus"`
	// DurationSeconds bounds the run's wall clock.
	DurationSeconds float64 `json:"duration_seconds"`
	// Concurrency is the closed-loop worker count.
	Concurrency int `json:"concurrency"`
	// Rate is the open-loop arrival rate in requests per second.
	Rate float64 `json:"rate"`
	// ReadFraction, AnnotateFraction, and TupleFraction weight the
	// request mix (normalized by their sum; all zero means read-only).
	ReadFraction     float64 `json:"read_fraction"`
	AnnotateFraction float64 `json:"annotate_fraction"`
	TupleFraction    float64 `json:"tuple_fraction"`
	// CorrelateRate weights GET /correlate anchor queries into the same
	// normalized mix (0 = none). Anchors are sampled from the corpus's
	// annotation stream, so hot annotations repeat with realistic skew.
	CorrelateRate float64 `json:"correlate_rate"`
	// Subscribers is the number of long-lived SSE /events clients held
	// open for the whole run.
	Subscribers int `json:"subscribers"`
	// SubscriberReconnectSeconds, when positive, makes each subscriber
	// drop and resume (Last-Event-ID) its stream on this period,
	// exercising the cursor-resume path under load.
	SubscriberReconnectSeconds float64 `json:"subscriber_reconnect_seconds"`
	// BatchSize is the updates-per-request size of annotation batches;
	// TupleBatchSize the tuples-per-request size of tuple batches.
	BatchSize      int `json:"batch_size"`
	TupleBatchSize int `json:"tuple_batch_size"`
	// MaxRetries bounds 429 retries per logical write (0 = give up on the
	// first shed). Every 429 response counts toward the shed statistic
	// whether or not it is retried.
	MaxRetries int `json:"max_retries"`
	// MaxBackoffSeconds caps the Retry-After honored per backoff sleep
	// (the jittered sleep is uniform in [0.5, 1.5) × the capped hint).
	MaxBackoffSeconds float64 `json:"max_backoff_seconds"`
	// Followers asks the local boot (StartLocal, annotload -local) for this
	// many read replicas behind the primary; the target's reads then
	// round-robin across the primary and its followers while writes stay on
	// the primary. Against a remote target the field is advisory —
	// Target.ReadURLs carries the actual read endpoints.
	Followers int `json:"followers"`
	// ReadRate asks the local boot for a per-instance read admission cap
	// (reads per second on each of primary and followers; 0 = unlimited).
	// With it set, aggregate 2xx read throughput measures admitted
	// capacity — which grows with the follower count — instead of
	// whatever a shared-CPU loopback happens to sustain.
	ReadRate float64 `json:"read_rate"`
	// Seed makes the run's traffic deterministic.
	Seed int64 `json:"seed"`
}

// WithDefaults returns the scenario with unset fields filled in: closed
// mode, 8 workers, 100 req/s offered, 5 s, a read-heavy 80/15/5 mix,
// batch sizes 16/4, 2 retries, 1 s backoff cap, paper corpus.
func (s Scenario) WithDefaults() Scenario {
	if s.Mode == "" {
		s.Mode = "closed"
	}
	if s.Corpus == "" {
		s.Corpus = "paper"
	}
	if s.DurationSeconds <= 0 {
		s.DurationSeconds = 5
	}
	if s.Concurrency <= 0 {
		s.Concurrency = 8
	}
	if s.Rate <= 0 {
		s.Rate = 100
	}
	if s.ReadFraction == 0 && s.AnnotateFraction == 0 && s.TupleFraction == 0 && s.CorrelateRate == 0 {
		s.ReadFraction, s.AnnotateFraction, s.TupleFraction = 0.80, 0.15, 0.05
	}
	if s.BatchSize <= 0 {
		s.BatchSize = 16
	}
	if s.TupleBatchSize <= 0 {
		s.TupleBatchSize = 4
	}
	if s.MaxRetries < 0 {
		s.MaxRetries = 0
	}
	if s.MaxBackoffSeconds <= 0 {
		s.MaxBackoffSeconds = 1
	}
	return s
}

// Validate rejects unrunnable scenarios (after WithDefaults).
func (s Scenario) Validate() error {
	if s.Mode != "closed" && s.Mode != "open" {
		return fmt.Errorf("load: mode %q is neither closed nor open", s.Mode)
	}
	if s.ReadFraction < 0 || s.AnnotateFraction < 0 || s.TupleFraction < 0 || s.CorrelateRate < 0 {
		return errors.New("load: negative mix fraction")
	}
	if s.ReadFraction+s.AnnotateFraction+s.TupleFraction+s.CorrelateRate <= 0 {
		return errors.New("load: request mix sums to zero")
	}
	if s.Subscribers < 0 {
		return errors.New("load: negative subscriber count")
	}
	if s.Followers < 0 {
		return errors.New("load: negative follower count")
	}
	if s.ReadRate < 0 {
		return errors.New("load: negative read rate")
	}
	if _, err := workload.NewStream(s.Corpus, s.Seed); err != nil {
		return err
	}
	return nil
}

// Target is the server a run drives.
type Target struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080". Writes,
	// the /stats probe, and SSE subscribers always go here.
	BaseURL string
	// ReadURLs, when non-empty, are the endpoints GET /recommend reads
	// round-robin across — typically the primary plus its read replicas
	// (Local.ReadURLs after a StartLocal with Followers set). Replica reads
	// carry the client's write watermark as a min_seq barrier, so the
	// read-your-writes check keeps its meaning under bounded staleness.
	ReadURLs []string
	// Client issues the requests; nil uses a transport sized for the
	// scenario's concurrency.
	Client *http.Client
}

// EndpointReport is the client-side view of one endpoint over a run.
// Latency quantiles come from the same log-scale histogram the server
// uses internally (≤25% bucket error, exact max).
type EndpointReport struct {
	// Requests counts 2xx responses; Errors counts non-2xx responses
	// other than 429; Shed counts 429 responses (one per response, before
	// any retry); Retries counts re-issues after a 429.
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors"`
	Shed     uint64 `json:"shed"`
	Retries  uint64 `json:"retries"`
	// Misses counts 404 responses on /correlate: the sampled anchor had no
	// occurrence in the answering snapshot yet (expected early in a run,
	// before the write mix applies it), so it is neither a success nor a
	// server error. Always zero on other endpoints.
	Misses uint64 `json:"misses,omitempty"`
	// MeanMillis, P50Millis, P99Millis, and MaxMillis digest successful
	// request latency in milliseconds.
	MeanMillis float64 `json:"mean_ms"`
	P50Millis  float64 `json:"p50_ms"`
	P99Millis  float64 `json:"p99_ms"`
	MaxMillis  float64 `json:"max_ms"`
}

// SSEReport digests the run's event subscribers.
type SSEReport struct {
	// Subscribers is the configured client count; Events the non-gap
	// events received across all of them; Gaps the gap frames; Resumes
	// the Last-Event-ID reconnects performed.
	Subscribers int    `json:"subscribers"`
	Events      uint64 `json:"events"`
	Gaps        uint64 `json:"gaps"`
	Resumes     uint64 `json:"resumes"`
	// CursorRegressions counts events whose cursor failed to advance past
	// the previous one on the same subscriber — replayed or reordered
	// history; always zero on a correct server.
	CursorRegressions uint64 `json:"cursor_regressions"`
}

// Report is the result of one load run.
type Report struct {
	// Scenario echoes the (defaulted) configuration that ran.
	Scenario Scenario `json:"scenario"`
	// DurationSeconds is the measured wall clock of the run.
	DurationSeconds float64 `json:"duration_seconds"`
	// OfferedRPS is the intended arrival rate (open mode; closed mode
	// offers whatever it achieves). AchievedRPS is completed 2xx
	// request throughput.
	OfferedRPS  float64 `json:"offered_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
	// Completed counts 2xx responses across all endpoints.
	Completed uint64 `json:"completed"`
	// SeqRegressions counts read-your-writes violations: /recommend
	// answers whose seq was below the largest write-acked seq known
	// before the read was issued. Always zero on a correct server.
	SeqRegressions uint64 `json:"seq_regressions"`
	// Recommend, Correlate, Annotations, and Tuples are the per-endpoint
	// digests.
	Recommend   EndpointReport `json:"recommend"`
	Correlate   EndpointReport `json:"correlate"`
	Annotations EndpointReport `json:"annotations"`
	Tuples      EndpointReport `json:"tuples"`
	// SSE digests the event subscribers.
	SSE SSEReport `json:"sse"`
}

// TotalShed sums 429 responses across the write endpoints.
func (r *Report) TotalShed() uint64 {
	return r.Annotations.Shed + r.Tuples.Shed
}

// endpoint aggregates one endpoint's live counters.
type endpoint struct {
	hist     metrics.Histogram
	requests atomic.Uint64
	errors   atomic.Uint64
	shed     atomic.Uint64
	retries  atomic.Uint64
	misses   atomic.Uint64
}

func (e *endpoint) report() EndpointReport {
	s := e.hist.Summary()
	return EndpointReport{
		Requests:   e.requests.Load(),
		Errors:     e.errors.Load(),
		Shed:       e.shed.Load(),
		Retries:    e.retries.Load(),
		Misses:     e.misses.Load(),
		MeanMillis: ms(s.Mean),
		P50Millis:  ms(s.P50),
		P99Millis:  ms(s.P99),
		MaxMillis:  ms(s.Max),
	}
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// runState is the shared state of one run.
type runState struct {
	sc     Scenario
	base   string
	client *http.Client
	relLen int
	// reads are the GET /recommend endpoints (just base without replicas);
	// readIdx round-robins across them; replicaReads marks that some of
	// them are followers, so reads must carry the min_seq barrier.
	reads        []string
	readIdx      atomic.Uint64
	replicaReads bool
	maxAcked     atomic.Uint64
	seqRegr      atomic.Uint64

	recommend   endpoint
	correlate   endpoint
	annotations endpoint
	tuples      endpoint
}

// ackSeq folds a write-acked seq into the read-your-writes watermark.
func (st *runState) ackSeq(seq uint64) {
	for {
		cur := st.maxAcked.Load()
		if seq <= cur || st.maxAcked.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// worker is one traffic source: its own rng and corpus stream, so the
// run's content is deterministic per (seed, worker index) regardless of
// scheduling.
type worker struct {
	rng    *rand.Rand
	stream workload.Stream
}

func newWorker(sc Scenario, id int) *worker {
	stream, err := workload.NewStream(sc.Corpus, sc.Seed+int64(id)*1000003)
	if err != nil {
		// Validate ran before workers start; the corpus is known good.
		panic(err)
	}
	return &worker{
		rng:    rand.New(rand.NewSource(sc.Seed ^ int64(id)*2654435761)),
		stream: stream,
	}
}

// Run drives the target with the scenario until its duration elapses (or
// ctx is canceled early) and returns the client-side report.
func Run(ctx context.Context, tgt Target, sc Scenario) (*Report, error) {
	sc = sc.WithDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	client := tgt.Client
	if client == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = sc.Concurrency + sc.Subscribers + 8
		client = &http.Client{Transport: tr}
	}
	st := &runState{sc: sc, base: tgt.BaseURL, client: client, reads: tgt.ReadURLs}
	if len(st.reads) == 0 {
		st.reads = []string{tgt.BaseURL}
	} else {
		st.replicaReads = true
	}
	relLen, err := fetchTuples(ctx, client, tgt.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("load: probe target: %w", err)
	}
	if relLen == 0 {
		return nil, errors.New("load: target serves an empty relation; reads have nothing to hit")
	}
	st.relLen = relLen

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Subscribers live for the whole run and stop with runCtx.
	subs := make([]*sseClient, sc.Subscribers)
	var subWG sync.WaitGroup
	for i := range subs {
		subs[i] = newSSEClient(tgt.BaseURL, client, time.Duration(sc.SubscriberReconnectSeconds*float64(time.Second)), false)
		subWG.Add(1)
		go func(c *sseClient) { defer subWG.Done(); c.run(runCtx) }(subs[i])
	}

	start := time.Now()
	deadline := start.Add(time.Duration(sc.DurationSeconds * float64(time.Second)))
	var offered uint64
	var workWG sync.WaitGroup
	if sc.Mode == "closed" {
		for i := 0; i < sc.Concurrency; i++ {
			w := newWorker(sc, i)
			workWG.Add(1)
			go func() {
				defer workWG.Done()
				for time.Now().Before(deadline) && runCtx.Err() == nil {
					st.doOne(runCtx, w)
				}
			}()
		}
		workWG.Wait()
	} else {
		// Open loop: arrivals on a fixed clock, each served by a pooled
		// worker in its own goroutine so a slow response never delays the
		// next arrival (the defining property of open-loop load).
		pool := sync.Pool{New: func() any {
			w := newWorker(sc, int(atomic.AddInt64(&openWorkerID, 1)))
			return w
		}}
		interval := time.Duration(float64(time.Second) / sc.Rate)
		if interval <= 0 {
			interval = time.Microsecond
		}
		ticker := time.NewTicker(interval)
	dispatch:
		for time.Now().Before(deadline) {
			select {
			case <-runCtx.Done():
				break dispatch
			case <-ticker.C:
				offered++
				workWG.Add(1)
				go func() {
					defer workWG.Done()
					w := pool.Get().(*worker)
					st.doOne(runCtx, w)
					pool.Put(w)
				}()
			}
		}
		ticker.Stop()
		workWG.Wait()
	}
	elapsed := time.Since(start)
	cancel()
	subWG.Wait()

	rep := &Report{
		Scenario:        sc,
		DurationSeconds: elapsed.Seconds(),
		Recommend:       st.recommend.report(),
		Correlate:       st.correlate.report(),
		Annotations:     st.annotations.report(),
		Tuples:          st.tuples.report(),
		SeqRegressions:  st.seqRegr.Load(),
	}
	rep.Completed = rep.Recommend.Requests + rep.Correlate.Requests + rep.Annotations.Requests + rep.Tuples.Requests
	rep.AchievedRPS = float64(rep.Completed) / elapsed.Seconds()
	if sc.Mode == "open" {
		rep.OfferedRPS = float64(offered) / elapsed.Seconds()
	} else {
		rep.OfferedRPS = rep.AchievedRPS
	}
	rep.SSE.Subscribers = sc.Subscribers
	for _, c := range subs {
		rep.SSE.Events += c.events.Load()
		rep.SSE.Gaps += c.gaps.Load()
		rep.SSE.Resumes += c.resumes.Load()
		rep.SSE.CursorRegressions += c.regressions.Load()
	}
	return rep, nil
}

// openWorkerID hands out distinct worker identities to the open-loop pool
// across a process (pooled workers are reused, so the count stays small).
var openWorkerID int64

// doOne issues one request of the scenario's mix.
func (st *runState) doOne(ctx context.Context, w *worker) {
	total := st.sc.ReadFraction + st.sc.CorrelateRate + st.sc.AnnotateFraction + st.sc.TupleFraction
	p := w.rng.Float64() * total
	switch {
	case p < st.sc.ReadFraction:
		st.doRecommend(ctx, w)
	case p < st.sc.ReadFraction+st.sc.CorrelateRate:
		st.doCorrelate(ctx, w)
	case p < st.sc.ReadFraction+st.sc.CorrelateRate+st.sc.AnnotateFraction:
		st.doAnnotations(ctx, w)
	default:
		st.doTuples(ctx, w)
	}
}

// doRecommend reads one tuple's recommendations — round-robin across the
// read endpoints — and checks the read-your-writes watermark. When the
// rotation includes replicas, the read carries the watermark as a min_seq
// barrier: a follower serves bounded staleness, and only a barrier read
// makes "answer seq below my acked writes" a violation rather than lag. A
// read shed by a per-instance admission cap (429) counts once toward Shed
// and retries — on the next endpoint in the rotation — under the same
// policy as writes.
func (st *runState) doRecommend(ctx context.Context, w *worker) {
	idx := w.rng.Intn(st.relLen)
	for attempt := 0; ; attempt++ {
		floor := st.maxAcked.Load()
		url := st.reads[st.readIdx.Add(1)%uint64(len(st.reads))] +
			"/recommend?tuple=" + strconv.Itoa(idx)
		if st.replicaReads && floor > 0 {
			url += "&min_seq=" + strconv.FormatUint(floor, 10) + "&wait_ms=5000"
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			st.recommend.errors.Add(1)
			return
		}
		startAt := time.Now()
		resp, err := st.client.Do(req)
		if err != nil {
			if ctx.Err() == nil {
				st.recommend.errors.Add(1)
			}
			return
		}
		if resp.StatusCode == http.StatusOK {
			var body struct {
				Seq uint64 `json:"seq"`
			}
			decodeErr := json.NewDecoder(resp.Body).Decode(&body)
			drain(resp)
			if decodeErr != nil {
				st.recommend.errors.Add(1)
				return
			}
			st.recommend.hist.Observe(time.Since(startAt))
			st.recommend.requests.Add(1)
			if body.Seq < floor {
				st.seqRegr.Add(1)
			}
			return
		}
		retryAfter := resp.Header.Get("Retry-After")
		drain(resp)
		if resp.StatusCode != http.StatusTooManyRequests {
			st.recommend.errors.Add(1)
			return
		}
		st.recommend.shed.Add(1)
		if attempt >= st.sc.MaxRetries {
			return
		}
		if !st.backoff(ctx, w, retryAfter) {
			return
		}
		st.recommend.retries.Add(1)
	}
}

// doCorrelate issues one anchor query, sampling the anchor from the
// corpus's annotation stream so hot annotations repeat with realistic skew.
// It shares doRecommend's contracts: reads round-robin across the read
// endpoints, replica reads carry the write watermark as a min_seq barrier
// (so the seq check below means violation, not lag), and a 429 from the
// read admission cap counts once toward Shed and retries on the next
// endpoint in the rotation. A 404 means the sampled anchor has no
// occurrence in the answering snapshot yet — expected before the write mix
// applies it — and counts as a miss, not an error.
func (st *runState) doCorrelate(ctx context.Context, w *worker) {
	anchor := w.stream.Annotations(1, st.relLen)[0].Annotation
	for attempt := 0; ; attempt++ {
		floor := st.maxAcked.Load()
		url := st.reads[st.readIdx.Add(1)%uint64(len(st.reads))] +
			"/correlate?anchor=" + neturl.QueryEscape(anchor)
		if st.replicaReads && floor > 0 {
			url += "&min_seq=" + strconv.FormatUint(floor, 10) + "&wait_ms=5000"
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			st.correlate.errors.Add(1)
			return
		}
		startAt := time.Now()
		resp, err := st.client.Do(req)
		if err != nil {
			if ctx.Err() == nil {
				st.correlate.errors.Add(1)
			}
			return
		}
		if resp.StatusCode == http.StatusOK {
			var body struct {
				Seq uint64 `json:"seq"`
			}
			decodeErr := json.NewDecoder(resp.Body).Decode(&body)
			drain(resp)
			if decodeErr != nil {
				st.correlate.errors.Add(1)
				return
			}
			st.correlate.hist.Observe(time.Since(startAt))
			st.correlate.requests.Add(1)
			if body.Seq < floor {
				st.seqRegr.Add(1)
			}
			return
		}
		retryAfter := resp.Header.Get("Retry-After")
		drain(resp)
		switch resp.StatusCode {
		case http.StatusNotFound:
			st.correlate.misses.Add(1)
			return
		case http.StatusTooManyRequests:
		default:
			st.correlate.errors.Add(1)
			return
		}
		st.correlate.shed.Add(1)
		if attempt >= st.sc.MaxRetries {
			return
		}
		if !st.backoff(ctx, w, retryAfter) {
			return
		}
		st.correlate.retries.Add(1)
	}
}

// doAnnotations posts one annotation batch.
func (st *runState) doAnnotations(ctx context.Context, w *worker) {
	batch := w.stream.Annotations(st.sc.BatchSize, st.relLen)
	type upd struct {
		Tuple      int    `json:"tuple"`
		Annotation string `json:"annotation"`
	}
	updates := make([]upd, len(batch))
	for i, u := range batch {
		updates[i] = upd{Tuple: u.Tuple, Annotation: u.Annotation}
	}
	body, err := json.Marshal(map[string]any{"updates": updates})
	if err != nil {
		st.annotations.errors.Add(1)
		return
	}
	st.postWrite(ctx, w, "/annotations", body, &st.annotations)
}

// doTuples posts one tuple batch.
func (st *runState) doTuples(ctx context.Context, w *worker) {
	batch := w.stream.Tuples(st.sc.TupleBatchSize)
	type tup struct {
		Values      []string `json:"values"`
		Annotations []string `json:"annotations"`
	}
	tuples := make([]tup, len(batch))
	for i, t := range batch {
		tuples[i] = tup{Values: t.Values, Annotations: t.Annotations}
	}
	body, err := json.Marshal(map[string]any{"tuples": tuples})
	if err != nil {
		st.tuples.errors.Add(1)
		return
	}
	st.postWrite(ctx, w, "/tuples", body, &st.tuples)
}

// postWrite issues one write with the 429 retry policy: every shed
// response counts once toward Shed, retries re-issue after a jittered
// sleep honoring (a capped) Retry-After, and a 2xx folds the acked seq
// into the read-your-writes watermark.
func (st *runState) postWrite(ctx context.Context, w *worker, path string, body []byte, ep *endpoint) {
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, st.base+path, bytes.NewReader(body))
		if err != nil {
			ep.errors.Add(1)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		startAt := time.Now()
		resp, err := st.client.Do(req)
		if err != nil {
			if ctx.Err() == nil {
				ep.errors.Add(1)
			}
			return
		}
		if resp.StatusCode == http.StatusOK {
			var rep struct {
				Seq uint64 `json:"seq"`
			}
			decodeErr := json.NewDecoder(resp.Body).Decode(&rep)
			drain(resp)
			if decodeErr != nil {
				ep.errors.Add(1)
				return
			}
			ep.hist.Observe(time.Since(startAt))
			ep.requests.Add(1)
			st.ackSeq(rep.Seq)
			return
		}
		retryAfter := resp.Header.Get("Retry-After")
		drain(resp)
		if resp.StatusCode != http.StatusTooManyRequests {
			ep.errors.Add(1)
			return
		}
		ep.shed.Add(1)
		if attempt >= st.sc.MaxRetries {
			return
		}
		if !st.backoff(ctx, w, retryAfter) {
			return
		}
		ep.retries.Add(1)
	}
}

// backoff sleeps one jittered Retry-After interval (capped by the
// scenario) before a 429 retry; false means the run ended mid-sleep.
func (st *runState) backoff(ctx context.Context, w *worker, retryAfter string) bool {
	hint := 1.0
	if v, err := strconv.ParseFloat(retryAfter, 64); err == nil && v > 0 {
		hint = v
	}
	if hint > st.sc.MaxBackoffSeconds {
		hint = st.sc.MaxBackoffSeconds
	}
	sleep := time.Duration(hint * (0.5 + w.rng.Float64()) * float64(time.Second))
	select {
	case <-ctx.Done():
		return false
	case <-time.After(sleep):
		return true
	}
}

// fetchTuples probes /stats for the target's relation length.
func fetchTuples(ctx context.Context, client *http.Client, base string) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/stats", nil)
	if err != nil {
		return 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("GET /stats: %s", resp.Status)
	}
	var body struct {
		Tuples int `json:"tuples"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return 0, err
	}
	return body.Tuples, nil
}

// drain discards the rest of a response body (up to a sanity cap) and
// closes it so the connection returns to the pool.
func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}
