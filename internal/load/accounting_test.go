package load

import (
	"context"
	"testing"
	"time"
)

// TestOverloadAccountingExact pins the shed-accounting contract end to
// end: with the admission queue squeezed to depth 1 and a durable store
// whose group-commit fsync lingers 5ms (so batch acknowledgement — and
// with it the writer's ack handoff — is paced well below the offered
// write rate), an open-loop write-heavy run must shed — and every shed
// must be visible on both sides of the wire with nothing lost or double
// counted. Client 429 responses (counted once per response, retries
// disabled) must equal the server's Shed counter exactly, and the
// server's Requests counter must count exactly the client's acknowledged
// (2xx) writes.
func TestOverloadAccountingExact(t *testing.T) {
	l, err := StartLocal(LocalOptions{
		Corpus:      "metrics",
		Tuples:      800,
		Seed:        3,
		Dir:         t.TempDir(),
		QueueDepth:  1,
		FlushWindow: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, l)

	before := l.Server.Stats()
	if before.Shed != 0 || before.Requests != 0 {
		t.Fatalf("fresh server has Shed=%d Requests=%d; accounting baseline is dirty", before.Shed, before.Requests)
	}
	rep, err := Run(context.Background(), Target{BaseURL: l.URL}, Scenario{
		Name:             "overload",
		Mode:             "open",
		Corpus:           "metrics",
		DurationSeconds:  2,
		Rate:             600,
		ReadFraction:     0.1,
		AnnotateFraction: 0.7,
		TupleFraction:    0.2,
		MaxRetries:       0, // a shed write is abandoned, so 429s map 1:1 to requests
		Seed:             21,
	})
	if err != nil {
		t.Fatal(err)
	}
	after := l.Server.Stats()

	if n := rep.Recommend.Errors + rep.Annotations.Errors + rep.Tuples.Errors; n != 0 {
		t.Fatalf("%d transport errors would skew the accounting", n)
	}
	if rep.TotalShed() == 0 {
		t.Fatal("queue-depth 1 under a 600 req/s write-heavy open loop shed nothing; the overload path was not exercised")
	}
	if got, want := after.Shed-before.Shed, rep.TotalShed(); got != want {
		t.Fatalf("server shed %d writes but clients saw %d 429s", got, want)
	}
	clientWrites := rep.Annotations.Requests + rep.Tuples.Requests
	if got := after.Requests - before.Requests; got != clientWrites {
		t.Fatalf("server admitted %d write requests but clients got %d write acks", got, clientWrites)
	}
	if rep.SeqRegressions != 0 {
		t.Fatalf("%d read-your-writes violations under overload", rep.SeqRegressions)
	}
}
