package httpapi

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"annotadb"
)

func TestRateGateRefill(t *testing.T) {
	g := newRateGate(10) // burst clamps to 1 token
	base := time.Now()
	g.last, g.tokens = base, g.burst

	if ok, _ := g.allow(base); !ok {
		t.Fatal("first read within burst was shed")
	}
	ok, retry := g.allow(base)
	if ok {
		t.Fatal("read beyond the burst was admitted")
	}
	if retry <= 0 || retry > 100*time.Millisecond {
		t.Errorf("retry hint = %v, want (0, 100ms] at 10 reads/s", retry)
	}
	if ok, _ := g.allow(base.Add(150 * time.Millisecond)); !ok {
		t.Error("read after a full token refilled was shed")
	}
}

func TestNilRateGateIsUnlimited(t *testing.T) {
	if g := newRateGate(0); g != nil {
		t.Errorf("rate 0 built a gate: %+v", g)
	}
	if g := newRateGate(-3); g != nil {
		t.Errorf("negative rate built a gate: %+v", g)
	}
}

// gatedServer serves a two-tuple dataset behind a ReadRate-limited handler.
func gatedServer(t *testing.T, rate float64) *httptest.Server {
	t.Helper()
	ds := annotadb.NewDataset()
	for i := 0; i < 4; i++ {
		if _, err := ds.AddTuple([]string{"28", "85"}, []string{"Annot_1"}); err != nil {
			t.Fatal(err)
		}
	}
	eng, err := annotadb.NewEngine(ds, annotadb.Options{MinSupport: 0.3, MinConfidence: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := annotadb.NewServer(eng, annotadb.ServeOptions{BatchWindow: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewWithOptions(srv, context.Background(), Options{ReadRate: rate}))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Close(ctx); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return ts
}

func TestReadGateShedsAndRecovers(t *testing.T) {
	ts := gatedServer(t, 5) // burst 1: the second immediate read sheds

	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := get("/recommend?tuple=0")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first read = %d, want 200", resp.StatusCode)
	}

	resp = get("/recommend?tuple=0")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("read beyond the cap = %d, want 429", resp.StatusCode)
	}
	hint, err := strconv.ParseFloat(resp.Header.Get("Retry-After"), 64)
	if err != nil || hint <= 0 || hint > 1 {
		t.Errorf("Retry-After = %q (%v), want fractional seconds in (0, 1]", resp.Header.Get("Retry-After"), err)
	}
	var envelope struct {
		Error ErrorJSON `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil || envelope.Error.Code != CodeOverloaded {
		t.Errorf("shed read error = %+v (%v), want code %q", envelope, err, CodeOverloaded)
	}
	resp.Body.Close()

	// /rules shares the gate; /stats and /healthz stay ungated (operators
	// and load balancers must see an overloaded replica, not a 429 from it).
	resp = get("/rules")
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("GET /rules beyond the cap = %d, want 429", resp.StatusCode)
	}
	for _, path := range []string{"/stats", "/healthz"} {
		resp = get(path)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s under read shed = %d, want 200", path, resp.StatusCode)
		}
	}

	// Tokens refill with time: the cap sheds load, it does not latch.
	time.Sleep(300 * time.Millisecond)
	resp = get("/recommend?tuple=0")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("read after refill = %d, want 200", resp.StatusCode)
	}
}
