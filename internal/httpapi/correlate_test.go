package httpapi

import (
	"encoding/json"
	"math"
	"net/http"
	"strconv"
	"testing"
)

// correlateBody is the decoded /correlate response.
type correlateBody struct {
	Anchor      string                `json:"anchor"`
	AnchorCount int                   `json:"anchor_count"`
	N           int                   `json:"n"`
	K           int                   `json:"k"`
	MinLift     float64               `json:"min_lift"`
	Seq         uint64                `json:"seq"`
	Count       int                   `json:"count"`
	Results     []CorrelateResultJSON `json:"results"`
}

func decodeErrorCode(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var envelope struct {
		Error ErrorJSON `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatalf("decode error envelope: %v", err)
	}
	return envelope.Error.Code
}

// TestCorrelateEndpoint covers the happy path on the gated fixture: every
// tuple carries the anchor, so the one candidate is perfectly associated —
// confidence 1, lift 1, and a degenerate (zero-margin) chi-square table the
// wire must still serialize as finite JSON.
func TestCorrelateEndpoint(t *testing.T) {
	ts := gatedServer(t, 0)

	resp, err := http.Get(ts.URL + "/correlate?anchor=28")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /correlate = %d, want 200", resp.StatusCode)
	}
	var body correlateBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if body.Anchor != "28" || body.AnchorCount != 4 || body.N != 4 {
		t.Fatalf("anchor %q count %d n %d, want 28 / 4 / 4", body.Anchor, body.AnchorCount, body.N)
	}
	if body.K != 10 || body.MinLift != 1 {
		t.Fatalf("defaults k %d min_lift %v, want 10 / 1", body.K, body.MinLift)
	}
	if body.Count != len(body.Results) || body.Results == nil {
		t.Fatalf("count %d vs %d results (nil %v)", body.Count, len(body.Results), body.Results == nil)
	}
	var hit *CorrelateResultJSON
	for i := range body.Results {
		if body.Results[i].Token == "Annot_1" {
			hit = &body.Results[i]
		}
	}
	if hit == nil {
		t.Fatalf("Annot_1 missing from results %+v", body.Results)
	}
	if hit.Count != 4 || hit.Frequency != 4 || hit.Confidence != 1 || hit.Lift != 1 {
		t.Fatalf("Annot_1 = %+v, want count 4 freq 4 confidence 1 lift 1", hit)
	}
	if math.IsInf(hit.ChiSquare, 0) || math.IsNaN(hit.ChiSquare) || hit.ChiSquare < 3.841 {
		t.Fatalf("degenerate chi_square = %v, want finite and beyond the cutoff", hit.ChiSquare)
	}
	if hit.PValue != 0 {
		t.Fatalf("degenerate p_value = %v, want 0", hit.PValue)
	}
}

func TestCorrelateBadRequests(t *testing.T) {
	ts := gatedServer(t, 0)
	for _, q := range []string{
		"",                      // missing anchor
		"anchor=28&k=0",         // k below 1
		"anchor=28&k=ten",       // k not a number
		"anchor=28&min_lift=-1", // negative lift floor
		"anchor=28&min_seq=x",   // malformed barrier
	} {
		resp, err := http.Get(ts.URL + "/correlate?" + q)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET /correlate?%s = %d, want 400", q, resp.StatusCode)
		}
		if code := decodeErrorCode(t, resp); code != CodeInvalidArgument {
			t.Errorf("GET /correlate?%s error code %q, want %q", q, code, CodeInvalidArgument)
		}
	}
}

func TestCorrelateUnknownAnchor(t *testing.T) {
	ts := gatedServer(t, 0)
	resp, err := http.Get(ts.URL + "/correlate?anchor=never-seen")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown anchor = %d, want 404", resp.StatusCode)
	}
	if code := decodeErrorCode(t, resp); code != CodeNotFound {
		t.Fatalf("unknown anchor error code %q, want %q", code, CodeNotFound)
	}
}

// TestCorrelateSeqBarrierOnPrimary: a min_seq barrier on a primary is an
// accepted no-op — acked writes are always visible there, so even a seq far
// beyond the current one answers immediately (the timeout path only exists
// on followers; annotadb's replica suite covers it).
func TestCorrelateSeqBarrierOnPrimary(t *testing.T) {
	ts := gatedServer(t, 0)
	resp, err := http.Get(ts.URL + "/correlate?anchor=28&min_seq=999999&wait_ms=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("primary barrier = %d, want 200", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/correlate?anchor=28&min_seq=1&wait_ms=-1")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative wait_ms = %d, want 400", resp.StatusCode)
	}
	if code := decodeErrorCode(t, resp); code != CodeInvalidArgument {
		t.Fatalf("negative wait_ms error code %q, want %q", code, CodeInvalidArgument)
	}
}

// TestReadGateShedsCorrelate: /correlate shares the read-admission gate
// with /recommend and /rules — the second immediate read sheds with 429
// and a fractional Retry-After.
func TestReadGateShedsCorrelate(t *testing.T) {
	ts := gatedServer(t, 5) // burst 1

	resp, err := http.Get(ts.URL + "/correlate?anchor=28")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first correlate = %d, want 200", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/correlate?anchor=28")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("correlate beyond the cap = %d, want 429", resp.StatusCode)
	}
	hint, err := strconv.ParseFloat(resp.Header.Get("Retry-After"), 64)
	if err != nil || hint <= 0 || hint > 1 {
		t.Errorf("Retry-After = %q (%v), want fractional seconds in (0, 1]", resp.Header.Get("Retry-After"), err)
	}
	if code := decodeErrorCode(t, resp); code != CodeOverloaded {
		t.Errorf("shed correlate error code %q, want %q", code, CodeOverloaded)
	}
}

// TestStatsCorrelateSection: /stats grows a correlate section once the
// index has been exercised, with cache hits distinguishing reuse from
// rebuilds.
func TestStatsCorrelateSection(t *testing.T) {
	ts := gatedServer(t, 0)

	for i := 0; i < 2; i++ {
		resp, err := http.Get(ts.URL + "/correlate?anchor=28")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("correlate %d = %d, want 200", i, resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Correlate *struct {
			IndexBuilds     uint64 `json:"index_builds"`
			CacheHits       uint64 `json:"cache_hits"`
			Anomalies       uint64 `json:"anomalies"`
			DetectorRunning bool   `json:"detector_running"`
		} `json:"correlate"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Correlate == nil {
		t.Fatal("/stats missing correlate section after queries")
	}
	if stats.Correlate.IndexBuilds != 1 || stats.Correlate.CacheHits != 1 {
		t.Fatalf("correlate stats = %+v, want 1 build + 1 cache hit", stats.Correlate)
	}
	if stats.Correlate.DetectorRunning {
		t.Fatal("detector reported running without CorrelateOptions.Anomalies")
	}
}
