// Package httpapi exposes an annotadb Server over HTTP/JSON: the transport
// layer shared by cmd/annotserve (the daemon), cmd/annotload's self-serve
// mode, and the in-process integration suites (macro soak, overload
// accounting). Keeping the handler here rather than inside the daemon means
// a load test exercises byte-for-byte the same routing, status mapping, and
// SSE framing production traffic sees.
//
// Endpoints (see cmd/annotserve/README.md for curl examples):
//
//	GET  /rules        current rules (?kind=, ?limit=)
//	GET  /recommend    ?tuple=N — recommendations for one tuple, with the
//	                   snapshot seq (and seq_vector when sharded) answered
//	                   from; ?min_seq=S (+?wait_ms=T) is a read-your-writes
//	                   barrier — the read waits until the advertised seq
//	                   reaches S (meaningful on followers; a primary's acked
//	                   writes are always visible)
//	GET  /correlate    ?anchor=<token> — the top-K annotations most strongly
//	                   associated with the anchor, ranked by confidence and
//	                   lift and filtered by a chi-square significance test
//	                   (?k=, ?min_lift=); same seq reporting and min_seq
//	                   barrier as /recommend
//	POST /annotations  apply an annotation batch (JSON or Figure 14 text);
//	                   the response reports the snapshot seq at ack time
//	POST /tuples       append tuples; same seq reporting
//	GET  /stats        serving, dataset, stream, durability, and (on a
//	                   follower) replication statistics
//	GET  /events       rule-churn Server-Sent Events with cursor resume
//	GET  /healthz      200 ok / 503 degraded once a write-path failure latched
//
// A durable unsharded primary additionally feeds read replicas (see
// internal/replica and annotadb.Follow):
//
//	GET /replication/checkpoint  stream the latest checkpoint file
//	                             (X-Annotadb-Epoch, X-Annotadb-Run-Id)
//	GET /replication/log         ?epoch=E&from=N&max_bytes=M — page WAL
//	                             frames; 409 when the position's generation
//	                             is gone (re-bootstrap)
//
// Errors are structured JSON: {"error":{"code":"...","message":"..."}} with
// the stable codes in the Code* constants.
//
// NewWithOptions can additionally cap admitted reads per second on this
// instance (Options.ReadRate): excess /rules, /recommend, and /correlate
// requests shed with 429 + Retry-After, the read-side counterpart of the
// write admission queue, so each replica in a read fleet protects its own
// latency floor.
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"annotadb"
	"annotadb/internal/correlate"
	"annotadb/internal/replica"
)

// Error codes of the structured error schema. Every non-2xx response has
// the body {"error":{"code":"<one of these>","message":"..."}}; the code is
// a stable machine-readable classification, the message is human-readable
// detail.
const (
	// CodeInvalidArgument is a 400: malformed request or bad batch.
	CodeInvalidArgument = "invalid_argument"
	// CodeNotFound is a 404: tuple index out of range (or /events disabled).
	CodeNotFound = "not_found"
	// CodeTooLarge is a 413: body over the byte budget.
	CodeTooLarge = "payload_too_large"
	// CodeInternal is a 500: server-side write failure (e.g. WAL disk);
	// retryable.
	CodeInternal = "internal"
	// CodeUnavailable is a 503: shutting down / request canceled.
	CodeUnavailable = "unavailable"
	// CodeOverloaded is a 429: admission queue full; retry after backing off.
	CodeOverloaded = "overloaded"
	// CodeReadOnly is a 403: this server is a read replica; route the write
	// to the primary.
	CodeReadOnly = "read_only"
	// CodeConflict is a 409: a replication tail position's generation is
	// gone; the follower must re-bootstrap from the checkpoint.
	CodeConflict = "conflict"
)

// Options configure optional transport behavior; the zero value matches
// New's defaults.
type Options struct {
	// ReadRate caps admitted GET /rules, /recommend, and /correlate
	// requests per second on this instance (token bucket; 0 = unlimited).
	// Excess reads shed with 429 + Retry-After — the read-side counterpart
	// of the write admission queue. Each replica in a read fleet enforces its own cap,
	// so a replica protects its latency floor by shedding while the
	// fleet's aggregate read capacity grows with the replica count.
	ReadRate float64
	// Health overrides the /healthz probe (nil: srv.Health). The latch
	// paths it reports — diverged replicas, a failed WAL fsync — are
	// one-way states a handler test cannot cheaply enter for real.
	Health func() error
}

// api exposes one Server over HTTP.
type api struct {
	srv *annotadb.Server
	// streamCtx gates every /events stream: canceling it (graceful
	// shutdown) ends the streams so Shutdown's in-flight drain can finish.
	streamCtx context.Context
	// health backs /healthz; New wires srv.Health, tests substitute
	// latched outcomes.
	health func() error
	// reads, when non-nil, is the read admission gate on /rules and
	// /recommend.
	reads *rateGate
}

// New returns the HTTP handler serving srv. Canceling streamCtx ends every
// open /events stream, which graceful shutdown needs before its in-flight
// request drain can finish.
func New(srv *annotadb.Server, streamCtx context.Context) http.Handler {
	return NewWithOptions(srv, streamCtx, Options{})
}

// NewWithHealth is New with an injectable health probe.
func NewWithHealth(srv *annotadb.Server, streamCtx context.Context, health func() error) http.Handler {
	return NewWithOptions(srv, streamCtx, Options{Health: health})
}

// NewWithOptions is New with transport options.
func NewWithOptions(srv *annotadb.Server, streamCtx context.Context, opts Options) http.Handler {
	health := opts.Health
	if health == nil {
		health = srv.Health
	}
	a := &api{srv: srv, streamCtx: streamCtx, health: health, reads: newRateGate(opts.ReadRate)}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /rules", a.rules)
	mux.HandleFunc("GET /recommend", a.recommend)
	mux.HandleFunc("GET /correlate", a.correlate)
	mux.HandleFunc("POST /annotations", a.annotations)
	mux.HandleFunc("POST /tuples", a.tuples)
	mux.HandleFunc("GET /stats", a.stats)
	mux.HandleFunc("GET /events", a.events)
	mux.HandleFunc("GET /healthz", a.healthz)
	mux.HandleFunc("GET /replication/checkpoint", a.replicationCheckpoint)
	mux.HandleFunc("GET /replication/log", a.replicationLog)
	return mux
}

// RuleJSON is the wire form of one rule, as it appears in /rules,
// /recommend, and event payloads.
type RuleJSON struct {
	LHS          []string `json:"lhs"`
	RHS          string   `json:"rhs"`
	Kind         string   `json:"kind"`
	Support      float64  `json:"support"`
	Confidence   float64  `json:"confidence"`
	PatternCount int      `json:"pattern_count"`
	LHSCount     int      `json:"lhs_count"`
	N            int      `json:"n"`
}

func toRuleJSON(r annotadb.Rule) RuleJSON {
	return RuleJSON{
		LHS:          r.LHS,
		RHS:          r.RHS,
		Kind:         string(r.Kind),
		Support:      r.Support,
		Confidence:   r.Confidence,
		PatternCount: r.PatternCount,
		LHSCount:     r.LHSCount,
		N:            r.N,
	}
}

// RecommendationJSON is the wire form of one missing-annotation
// recommendation in the /recommend response.
type RecommendationJSON struct {
	Tuple      int      `json:"tuple"`
	Annotation string   `json:"annotation"`
	Rule       RuleJSON `json:"rule"`
}

// ReportJSON is the wire form of an update report — the body of a
// successful POST /annotations or POST /tuples. Seq is the snapshot
// sequence current when the write was acknowledged: because updates
// publish before they ack, every read at or after Seq observes this write
// (SeqVector is the per-shard equivalent on sharded servers).
type ReportJSON struct {
	Operation       string   `json:"operation"`
	Applied         int      `json:"applied"`
	Skipped         int      `json:"skipped"`
	Promoted        int      `json:"promoted"`
	Demoted         int      `json:"demoted"`
	Discovered      int      `json:"discovered"`
	Dropped         int      `json:"dropped"`
	Remined         bool     `json:"remined"`
	DurationSeconds float64  `json:"duration_seconds"`
	Seq             uint64   `json:"seq"`
	SeqVector       []uint64 `json:"seq_vector,omitempty"`
}

func toReportJSON(r annotadb.UpdateReport) ReportJSON {
	return ReportJSON{
		Operation:       r.Operation,
		Applied:         r.Applied,
		Skipped:         r.Skipped,
		Promoted:        r.Promoted,
		Demoted:         r.Demoted,
		Discovered:      r.Discovered,
		Dropped:         r.Dropped,
		Remined:         r.Remined,
		DurationSeconds: r.DurationSeconds,
		Seq:             r.Seq,
		SeqVector:       r.SeqVector,
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// ErrorJSON is the wire form of the structured error schema.
type ErrorJSON struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, map[string]ErrorJSON{"error": {Code: code, Message: err.Error()}})
}

// WriteUpdateError maps write-path failures to statuses: shutdown and
// cancellation are availability problems (503, safe to retry elsewhere), a
// write to a read replica is a routing defect (403, go to the primary), an
// overloaded admission queue is backpressure (429 with a Retry-After hint —
// the write was shed, not applied), a journal failure is a server-side
// fault (500, the request was valid and may be retried), and everything
// else is a request defect (400). The Retry-After hint defaults to one
// second; WriteUpdateErrorRetry takes the server's derived hint.
func WriteUpdateError(w http.ResponseWriter, err error) {
	WriteUpdateErrorRetry(w, err, time.Second)
}

// WriteUpdateErrorRetry is WriteUpdateError with an explicit backoff hint
// for shed writes, normally the server's RetryAfter — about two admission
// waits, so clients back off proportionally to the configured batch and
// group-commit windows instead of synchronizing on a fixed constant.
func WriteUpdateErrorRetry(w http.ResponseWriter, err error, retry time.Duration) {
	switch {
	case errors.Is(err, annotadb.ErrServerClosed),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusServiceUnavailable, CodeUnavailable, err)
	case errors.Is(err, annotadb.ErrFollower):
		writeError(w, http.StatusForbidden, CodeReadOnly, err)
	case errors.Is(err, annotadb.ErrOverloaded):
		w.Header().Set("Retry-After", formatRetryAfter(retry))
		writeError(w, http.StatusTooManyRequests, CodeOverloaded, err)
	case errors.Is(err, annotadb.ErrJournal):
		writeError(w, http.StatusInternalServerError, CodeInternal, err)
	default:
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, err)
	}
}

// formatRetryAfter renders a backoff hint in decimal seconds. RFC 9110
// Retry-After is integral, but rounding a 1ms batch window up to "1" would
// defeat the proportional backoff the hint exists for; our clients
// (annotload, followers) parse the fractional form, and integral-only
// parsers still read the leading digit as a sane whole-second hint.
func formatRetryAfter(d time.Duration) string {
	if d <= 0 {
		d = time.Second
	}
	return strconv.FormatFloat(d.Seconds(), 'f', 3, 64)
}

// writeUpdateError maps a write failure using this server's derived
// Retry-After hint.
func (a *api) writeUpdateError(w http.ResponseWriter, err error) {
	WriteUpdateErrorRetry(w, err, a.srv.RetryAfter())
}

// rateGate is the read admission token bucket: refilled at rate tokens per
// second up to a small burst (50 ms worth), so admitted throughput tracks
// the configured cap on any window longer than the burst.
type rateGate struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newRateGate(rate float64) *rateGate {
	if rate <= 0 {
		return nil
	}
	burst := rate / 20
	if burst < 1 {
		burst = 1
	}
	return &rateGate{rate: rate, burst: burst, tokens: burst, last: time.Now()}
}

// allow admits one read or returns the wait until a token is available.
func (g *rateGate) allow(now time.Time) (bool, time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if elapsed := now.Sub(g.last).Seconds(); elapsed > 0 {
		g.tokens = math.Min(g.burst, g.tokens+elapsed*g.rate)
		g.last = now
	}
	if g.tokens >= 1 {
		g.tokens--
		return true, 0
	}
	return false, time.Duration((1 - g.tokens) / g.rate * float64(time.Second))
}

// admitRead applies the read gate; a shed read answers 429 with the time
// until the next token as its Retry-After, mirroring the write path's
// proportional backoff hint.
func (a *api) admitRead(w http.ResponseWriter) bool {
	if a.reads == nil {
		return true
	}
	ok, retry := a.reads.allow(time.Now())
	if !ok {
		w.Header().Set("Retry-After", formatRetryAfter(retry))
		writeError(w, http.StatusTooManyRequests, CodeOverloaded,
			errors.New("read capacity exhausted on this instance; retry or use another replica"))
	}
	return ok
}

// maxBodyBytes bounds update request bodies so an oversized payload cannot
// buffer unbounded memory; generous for real batches (a Figure 14 line is
// ~12 bytes, so this admits ~million-update batches).
const maxBodyBytes = 16 << 20

// writeBodyError distinguishes an over-limit body (413) from a malformed
// one (400).
func writeBodyError(w http.ResponseWriter, err error) {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		writeError(w, http.StatusRequestEntityTooLarge, CodeTooLarge, err)
		return
	}
	writeError(w, http.StatusBadRequest, CodeInvalidArgument, fmt.Errorf("bad request body: %w", err))
}

func (a *api) rules(w http.ResponseWriter, r *http.Request) {
	if !a.admitRead(w) {
		return
	}
	rules := a.srv.Rules()
	if kind := r.URL.Query().Get("kind"); kind != "" {
		if kind != string(annotadb.DataToAnnotation) && kind != string(annotadb.AnnotationToAnnotation) {
			writeError(w, http.StatusBadRequest, CodeInvalidArgument, fmt.Errorf("unknown kind %q", kind))
			return
		}
		filtered := rules[:0:0]
		for _, rl := range rules {
			if string(rl.Kind) == kind {
				filtered = append(filtered, rl)
			}
		}
		rules = filtered
	}
	if limitStr := r.URL.Query().Get("limit"); limitStr != "" {
		limit, err := strconv.Atoi(limitStr)
		if err != nil || limit < 0 {
			writeError(w, http.StatusBadRequest, CodeInvalidArgument, fmt.Errorf("bad limit %q", limitStr))
			return
		}
		if limit < len(rules) {
			rules = rules[:limit]
		}
	}
	out := make([]RuleJSON, len(rules))
	for i, rl := range rules {
		out[i] = toRuleJSON(rl)
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(out), "rules": out})
}

func (a *api) recommend(w http.ResponseWriter, r *http.Request) {
	if !a.admitRead(w) {
		return
	}
	tupleStr := r.URL.Query().Get("tuple")
	if tupleStr == "" {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, errors.New("missing tuple query parameter (zero-based tuple position)"))
		return
	}
	idx, err := strconv.Atoi(tupleStr)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, fmt.Errorf("bad tuple index %q", tupleStr))
		return
	}
	if idx < 0 {
		// Malformed input, not a miss: no negative index can ever exist.
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, fmt.Errorf("tuple index must be non-negative, got %d", idx))
		return
	}
	if !a.seqBarrier(w, r) {
		return
	}
	recs, seq, err := a.srv.RecommendAt(idx)
	if err != nil {
		writeError(w, http.StatusNotFound, CodeNotFound, err)
		return
	}
	out := make([]RecommendationJSON, len(recs))
	for i, rec := range recs {
		out[i] = RecommendationJSON{
			Tuple:      rec.Tuple,
			Annotation: rec.Annotation,
			Rule:       toRuleJSON(rec.Rule),
		}
	}
	body := map[string]any{"tuple": idx, "seq": seq.Seq, "count": len(out), "recommendations": out}
	if seq.Shards != nil {
		// Sharded: the per-shard snapshot sequence vector the answer was
		// assembled from.
		body["seq_vector"] = seq.Shards
	}
	writeJSON(w, http.StatusOK, body)
}

// seqBarrier applies the optional ?min_seq (+?wait_ms) read-your-writes
// barrier shared by /recommend and /correlate: the request waits until the
// advertised sequence reaches the seq the client's write was acknowledged
// at. On a primary the barrier is already satisfied (publish-before-ack); on
// a follower it waits for the replication watermark. Bounded by wait_ms
// (default 1s) so a stalled follower answers 503 instead of hanging until
// client disconnect. Reports whether the handler may proceed; on false the
// error response has been written.
func (a *api) seqBarrier(w http.ResponseWriter, r *http.Request) bool {
	v := r.URL.Query().Get("min_seq")
	if v == "" {
		return true
	}
	minSeq, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, fmt.Errorf("bad min_seq %q", v))
		return false
	}
	wait := time.Second
	if wms := r.URL.Query().Get("wait_ms"); wms != "" {
		ms, err := strconv.Atoi(wms)
		if err != nil || ms < 0 {
			writeError(w, http.StatusBadRequest, CodeInvalidArgument, fmt.Errorf("bad wait_ms %q", wms))
			return false
		}
		wait = time.Duration(ms) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), wait)
	err = a.srv.WaitSeq(ctx, minSeq)
	cancel()
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, CodeUnavailable,
			fmt.Errorf("seq barrier %d not reached within %v: %w", minSeq, wait, err))
		return false
	}
	return true
}

// CorrelateResultJSON is the wire form of one ranked candidate in the
// /correlate response.
type CorrelateResultJSON struct {
	Token      string  `json:"token"`
	Family     string  `json:"family"`
	Count      int     `json:"count"`
	Frequency  int     `json:"frequency"`
	Confidence float64 `json:"confidence"`
	Lift       float64 `json:"lift"`
	ChiSquare  float64 `json:"chi_square"`
	PValue     float64 `json:"p_value"`
}

// correlate answers an anchor query: the top-K annotations most strongly
// associated with ?anchor=, ranked by confidence then lift and filtered by
// the chi-square significance test (?k= and ?min_lift= tune the cut). The
// answer is assembled from one published snapshot generation — reported as
// seq (and seq_vector when sharded) — and honors the same ?min_seq barrier
// as /recommend, so a client can correlate against a follower without
// reading backwards past its own writes.
func (a *api) correlate(w http.ResponseWriter, r *http.Request) {
	if !a.admitRead(w) {
		return
	}
	q := r.URL.Query()
	cq, err := correlate.ParseQuery(q.Get("anchor"), q.Get("k"), q.Get("min_lift"))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, err)
		return
	}
	if !a.seqBarrier(w, r) {
		return
	}
	ans, seq, err := a.srv.Correlate(cq.Anchor, cq.K, cq.MinLift)
	if err != nil {
		if errors.Is(err, annotadb.ErrUnknownAnchor) {
			writeError(w, http.StatusNotFound, CodeNotFound, err)
			return
		}
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, err)
		return
	}
	out := make([]CorrelateResultJSON, len(ans.Results))
	for i, res := range ans.Results {
		chi2 := res.ChiSquare
		if math.IsInf(chi2, 1) {
			// A degenerate 2×2 table (a zero margin: the anchor or the
			// candidate covers every tuple) makes the statistic +Inf, which
			// JSON cannot carry; the wire reports the largest finite float —
			// still unmistakably beyond any cutoff.
			chi2 = math.MaxFloat64
		}
		out[i] = CorrelateResultJSON{
			Token:      res.Token,
			Family:     res.Family,
			Count:      res.Count,
			Frequency:  res.Frequency,
			Confidence: res.Confidence,
			Lift:       res.Lift,
			ChiSquare:  chi2,
			PValue:     res.PValue,
		}
	}
	body := map[string]any{
		"anchor":       ans.Anchor,
		"anchor_count": ans.AnchorCount,
		"n":            ans.N,
		"k":            cq.K,
		"min_lift":     cq.MinLift,
		"seq":          seq.Seq,
		"count":        len(out),
		"results":      out,
	}
	if seq.Shards != nil {
		body["seq_vector"] = seq.Shards
	}
	writeJSON(w, http.StatusOK, body)
}

type annotationsRequest struct {
	Updates []struct {
		Tuple      int    `json:"tuple"`
		Annotation string `json:"annotation"`
	} `json:"updates"`
	Remove bool `json:"remove"`
}

func (a *api) annotations(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	ct := r.Header.Get("Content-Type")
	var (
		rep annotadb.UpdateReport
		err error
	)
	switch {
	case strings.HasPrefix(ct, "text/plain"):
		// The paper's Figure 14 batch format, 1-based tuple indexes.
		rep, err = a.srv.ApplyUpdateFile(r.Context(), r.Body)
	default:
		var req annotationsRequest
		if derr := json.NewDecoder(r.Body).Decode(&req); derr != nil {
			writeBodyError(w, derr)
			return
		}
		batch := make([]annotadb.AnnotationUpdate, len(req.Updates))
		for i, u := range req.Updates {
			batch[i] = annotadb.AnnotationUpdate{Tuple: u.Tuple, Annotation: u.Annotation}
		}
		if req.Remove {
			rep, err = a.srv.RemoveAnnotations(r.Context(), batch)
		} else {
			rep, err = a.srv.AddAnnotations(r.Context(), batch)
		}
	}
	if err != nil {
		a.writeUpdateError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, toReportJSON(rep))
}

type tuplesRequest struct {
	Tuples []struct {
		Values      []string `json:"values"`
		Annotations []string `json:"annotations"`
	} `json:"tuples"`
}

func (a *api) tuples(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var req tuplesRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeBodyError(w, err)
		return
	}
	batch := make([]annotadb.TupleSpec, len(req.Tuples))
	for i, t := range req.Tuples {
		batch[i] = annotadb.TupleSpec{Values: t.Values, Annotations: t.Annotations}
	}
	rep, err := a.srv.AddTuples(r.Context(), batch)
	if err != nil {
		a.writeUpdateError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, toReportJSON(rep))
}

func (a *api) stats(w http.ResponseWriter, r *http.Request) {
	st := a.srv.Stats()
	// The relation section (tuples, attachments, distinct annotations)
	// describes the published snapshot's generation, computed from its
	// frozen frequency table: polling /stats never takes the relation lock
	// for more than the single live-version read, so it cannot stall the
	// writer. staleness is how many relation mutations the live store is
	// ahead of the generation reads are currently served from.
	body := map[string]any{
		"snapshot_seq":         st.SnapshotSeq,
		"tuples":               st.Tuples,
		"rule_count":           st.RuleCount,
		"rel_version":          st.RelVersion,
		"live_rel_version":     st.LiveRelVersion,
		"staleness":            st.LiveRelVersion - st.RelVersion,
		"requests":             st.Requests,
		"batches":              st.Batches,
		"coalesced":            st.Coalesced,
		"reads":                st.Reads,
		"shed":                 st.Shed,
		"remines":              st.Remines,
		"attachments":          st.Attachments,
		"distinct_annotations": st.DistinctAnnotations,
		// Per-stage write latency digests: queue wait (admission to apply),
		// engine apply, covering group-commit fsync wait (zero counts unless
		// -flush-window group commit is on), and snapshot publish.
		"latency": map[string]any{
			"queue":   stageJSON(st.Latency.Queue),
			"apply":   stageJSON(st.Latency.Apply),
			"fsync":   stageJSON(st.Latency.Fsync),
			"publish": stageJSON(st.Latency.Publish),
		},
	}
	if st.Shards > 0 {
		// Sharded: the merged generation's identity plus a per-shard
		// breakdown, so operators can see the write-load balance across
		// family shards and each shard's snapshot staleness.
		body["shards"] = st.Shards
		body["seq_vector"] = st.SeqVector
		perShard := make([]map[string]any, len(st.PerShard))
		for i, ss := range st.PerShard {
			perShard[i] = map[string]any{
				"shard":                ss.Shard,
				"seq":                  ss.SnapshotSeq,
				"tuples":               ss.Tuples,
				"rule_count":           ss.RuleCount,
				"rel_version":          ss.RelVersion,
				"live_rel_version":     ss.LiveRelVersion,
				"staleness":            ss.LiveRelVersion - ss.RelVersion,
				"attachments":          ss.Attachments,
				"distinct_annotations": ss.DistinctAnnotations,
				"requests":             ss.Requests,
				"batches":              ss.Batches,
				"coalesced":            ss.Coalesced,
				"reads":                ss.Reads,
				"shed":                 ss.Shed,
				"remines":              ss.Remines,
			}
		}
		body["per_shard"] = perShard
	}
	if ss := a.srv.StreamStats(); ss.Enabled {
		// The churn stream: event volume, live subscribers, and the cursor
		// range a client can still resume from.
		streamBody := map[string]any{
			"events_published": ss.EventsPublished,
			"subscribers":      ss.Subscribers,
			"gap_events":       ss.GapEvents,
			"first_cursor":     ss.FirstCursor,
			"next_cursor":      ss.NextCursor,
		}
		if len(ss.PerShard) > 1 {
			streamBody["per_shard_events"] = ss.PerShard
		}
		body["stream"] = streamBody
	}
	if cs := a.srv.CorrelateStats(); cs.IndexBuilds > 0 || cs.CacheHits > 0 || cs.DetectorRunning {
		// The correlation-discovery subsystem: per-generation index builds
		// vs cache reuse, and the churn-anomaly detector's emission count.
		body["correlate"] = map[string]any{
			"index_builds":     cs.IndexBuilds,
			"cache_hits":       cs.CacheHits,
			"anomalies":        cs.Anomalies,
			"detector_running": cs.DetectorRunning,
		}
	}
	if d := a.srv.Durability(); d != nil {
		durability := map[string]any{
			"records_appended":     d.RecordsAppended,
			"log_bytes":            d.LogBytes,
			"syncs":                d.Syncs,
			"unsynced_records":     d.UnsyncedRecords,
			"unsynced_bytes":       d.UnsyncedBytes,
			"checkpoints":          d.Checkpoints,
			"checkpoint_errors":    d.CheckpointErrors,
			"recovered":            d.Recovery.FromCheckpoint,
			"records_replayed":     d.Recovery.RecordsReplayed,
			"torn_tail":            d.Recovery.TornTail,
			"recovery_seconds":     d.Recovery.DurationSeconds,
			"last_checkpoint_unix": float64(0),
		}
		if d.LastCheckpointUnixNano != 0 {
			durability["last_checkpoint_unix"] = float64(d.LastCheckpointUnixNano) / float64(time.Second)
		}
		if d.PerShard != nil {
			durability["padded_tuples"] = d.Recovery.PaddedTuples
			per := make([]map[string]any, len(d.PerShard))
			for i, ss := range d.PerShard {
				per[i] = map[string]any{
					"shard":             ss.Shard,
					"records_appended":  ss.RecordsAppended,
					"log_bytes":         ss.LogBytes,
					"syncs":             ss.Syncs,
					"unsynced_records":  ss.UnsyncedRecords,
					"unsynced_bytes":    ss.UnsyncedBytes,
					"checkpoints":       ss.Checkpoints,
					"checkpoint_errors": ss.CheckpointErrors,
				}
			}
			durability["per_shard"] = per
		}
		if ev := d.Events; ev != nil {
			// The rotated-segment event log behind /events: one per server
			// (sharded streams merge into a single cursor order beside the
			// cluster manifest), so these counters are cluster-level.
			durability["events"] = map[string]any{
				"segments":        ev.Segments,
				"first_cursor":    ev.FirstCursor,
				"next_cursor":     ev.NextCursor,
				"retained_bytes":  ev.RetainedBytes,
				"appends":         ev.Appends,
				"syncs":           ev.Syncs,
				"rotations":       ev.Rotations,
				"rotated_bytes":   ev.RotatedBytes,
				"retention_trims": ev.RetentionTrims,
				"trimmed_bytes":   ev.TrimmedBytes,
			}
		}
		body["durability"] = durability
	}
	if rs := st.Replication; rs != nil {
		// Follower: snapshot_seq above is the LOCAL apply generation (it
		// restarts at every re-bootstrap) and staleness measures the local
		// apply loop; replication.seq is the primary-sequence watermark
		// clients should reason about. No durability section appears here —
		// a follower keeps nothing on disk.
		body["replication"] = map[string]any{
			"role":            "follower",
			"primary":         rs.Primary,
			"run_id":          rs.RunID,
			"epoch":           rs.Epoch,
			"seq":             rs.Seq,
			"applied_records": rs.Applied,
			"bootstraps":      rs.Bootstraps,
			"conflicts":       rs.Conflicts,
			"tail_errors":     rs.TailErrors,
			// Wall-clock milliseconds since the primary's position was last
			// confirmed — the freshness number operators alarm on.
			"lag_ms": rs.LagMillis,
		}
	}
	writeJSON(w, http.StatusOK, body)
}

// replicationCheckpoint streams the primary's latest checkpoint file to a
// bootstrapping follower, with its generation and this process run's id in
// the headers. The head metadata and the streamed bytes come from one open
// descriptor, so a checkpoint installing mid-request cannot desync them.
func (a *api) replicationCheckpoint(w http.ResponseWriter, r *http.Request) {
	src, err := a.srv.ReplicationSource()
	if err != nil {
		writeError(w, http.StatusNotFound, CodeNotFound, err)
		return
	}
	f, meta, err := src.OpenCheckpoint()
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, CodeUnavailable, err)
		return
	}
	defer f.Close()
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set(replica.HeaderEpoch, strconv.FormatUint(meta.Epoch, 10))
	h.Set(replica.HeaderRunID, src.RunID())
	w.WriteHeader(http.StatusOK)
	io.Copy(w, f) //nolint:errcheck // client disconnects surface as copy errors
}

// replicationLog pages WAL frames to a tailing follower. 200 carries zero
// or more whole frames plus the generation, conservative primary seq, and
// log size headers; 409 tells the follower its position's generation is
// gone and it must re-bootstrap from the checkpoint.
func (a *api) replicationLog(w http.ResponseWriter, r *http.Request) {
	src, err := a.srv.ReplicationSource()
	if err != nil {
		writeError(w, http.StatusNotFound, CodeNotFound, err)
		return
	}
	q := r.URL.Query()
	epoch, err := strconv.ParseUint(q.Get("epoch"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, fmt.Errorf("bad epoch %q", q.Get("epoch")))
		return
	}
	from, err := strconv.ParseInt(q.Get("from"), 10, 64)
	if err != nil || from < 0 {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, fmt.Errorf("bad from offset %q", q.Get("from")))
		return
	}
	var maxBytes int64
	if v := q.Get("max_bytes"); v != "" {
		if maxBytes, err = strconv.ParseInt(v, 10, 64); err != nil || maxBytes < 0 {
			writeError(w, http.StatusBadRequest, CodeInvalidArgument, fmt.Errorf("bad max_bytes %q", v))
			return
		}
	}
	ch, err := src.Tail(epoch, from, maxBytes)
	h := w.Header()
	h.Set(replica.HeaderRunID, src.RunID())
	if errors.Is(err, replica.ErrConflict) {
		h.Set(replica.HeaderEpoch, strconv.FormatUint(ch.Epoch, 10))
		writeError(w, http.StatusConflict, CodeConflict, err)
		return
	}
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, CodeUnavailable, err)
		return
	}
	h.Set("Content-Type", "application/octet-stream")
	h.Set(replica.HeaderEpoch, strconv.FormatUint(ch.Epoch, 10))
	h.Set(replica.HeaderSeq, strconv.FormatUint(ch.Seq, 10))
	h.Set(replica.HeaderSize, strconv.FormatInt(ch.Size, 10))
	h.Set(replica.HeaderNext, strconv.FormatInt(ch.From+int64(len(ch.Data)), 10))
	w.WriteHeader(http.StatusOK)
	w.Write(ch.Data) //nolint:errcheck
}

// stageJSON renders one pipeline stage's latency digest (seconds, like the
// other duration fields in /stats).
func stageJSON(s annotadb.StageLatency) map[string]any {
	return map[string]any{
		"count":        s.Count,
		"mean_seconds": s.Mean.Seconds(),
		"p50_seconds":  s.P50.Seconds(),
		"p99_seconds":  s.P99.Seconds(),
		"max_seconds":  s.Max.Seconds(),
	}
}

// healthz reports liveness and write-path health: 200 {"status":"ok"}
// while writes can proceed, 503 {"status":"degraded","reason":...} once
// the server latched an unrecoverable failure (diverged shard replicas, a
// WAL fsync failure). Reads keep serving from published snapshots while
// degraded; the probe tells load balancers to stop routing writes here
// until a restart recovers.
func (a *api) healthz(w http.ResponseWriter, r *http.Request) {
	if err := a.health(); err != nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"status": "degraded",
			"reason": err.Error(),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// EventCountsJSON is the wire form of one side of a rule's count change.
type EventCountsJSON struct {
	PatternCount int     `json:"pattern_count"`
	LHSCount     int     `json:"lhs_count"`
	N            int     `json:"n"`
	Support      float64 `json:"support"`
	Confidence   float64 `json:"confidence"`
}

// EventJSON is the wire form of one churn event (the SSE data: payload).
type EventJSON struct {
	Cursor    uint64           `json:"cursor,omitempty"`
	Seq       uint64           `json:"seq,omitempty"`
	SeqVector []uint64         `json:"seq_vector,omitempty"`
	Shard     int              `json:"shard"`
	Kind      string           `json:"kind"`
	Tier      string           `json:"tier,omitempty"`
	Family    string           `json:"family,omitempty"`
	LHS       []string         `json:"lhs,omitempty"`
	RHS       string           `json:"rhs,omitempty"`
	Old       *EventCountsJSON `json:"old,omitempty"`
	New       *EventCountsJSON `json:"new,omitempty"`
	From      uint64           `json:"from,omitempty"`
	To        uint64           `json:"to,omitempty"`
	// churn_anomaly payload: the detection window, the spiking family's
	// churn count in it, the EWMA baseline it beat, and the co-churned
	// families of the same window.
	WindowMillis int64    `json:"window_ms,omitempty"`
	Count        uint64   `json:"count,omitempty"`
	Baseline     float64  `json:"baseline,omitempty"`
	Related      []string `json:"related,omitempty"`
}

func toEventCountsJSON(c *annotadb.RuleCounts) *EventCountsJSON {
	if c == nil {
		return nil
	}
	return &EventCountsJSON{
		PatternCount: c.PatternCount,
		LHSCount:     c.LHSCount,
		N:            c.N,
		Support:      c.Support,
		Confidence:   c.Confidence,
	}
}

func toEventJSON(ev annotadb.Event) EventJSON {
	return EventJSON{
		Cursor:    ev.Cursor,
		Seq:       ev.Seq,
		SeqVector: ev.SeqVector,
		Shard:     ev.Shard,
		Kind:      ev.Kind,
		Tier:      ev.Tier,
		Family:    ev.Family,
		LHS:       ev.LHS,
		RHS:       ev.RHS,
		Old:       toEventCountsJSON(ev.Old),
		New:       toEventCountsJSON(ev.New),
		From:      ev.From,
		To:        ev.To,

		WindowMillis: ev.WindowMillis,
		Count:        ev.Count,
		Baseline:     ev.Baseline,
		Related:      ev.Related,
	}
}

// events streams rule churn as Server-Sent Events. Resume: pass the last
// cursor seen as the Last-Event-ID header (the standard SSE reconnect
// behavior — every non-gap event carries id: <cursor>) or as ?from=C to
// start at cursor C inclusively; with neither, the stream starts live.
// Filters: repeatable family= and kind= parameters, and tier=valid or
// tier=candidate. A position older than retained history yields one
// event: gap frame, then the stream continues from the oldest retained
// event.
func (a *api) events(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	opts := annotadb.SubscribeOptions{
		Families: q["family"],
		Kinds:    q["kind"],
		Tier:     q.Get("tier"),
	}
	if v := q.Get("from"); v != "" {
		from, err := strconv.ParseUint(v, 10, 64)
		if err != nil || from == 0 {
			writeError(w, http.StatusBadRequest, CodeInvalidArgument, fmt.Errorf("bad from cursor %q (cursors start at 1)", v))
			return
		}
		opts.FromSeq = from
	} else if lei := r.Header.Get("Last-Event-ID"); lei != "" {
		// Per the SSE spec the client cannot clear Last-Event-ID once any
		// event set it, and EventSource replays whatever it last saw —
		// possibly an id another endpoint minted. An unparseable id is
		// therefore ignored (live tail), never a 400: rejecting it would
		// wedge the browser's reconnect loop forever, since every retry
		// carries the same header.
		if last, err := strconv.ParseUint(strings.TrimSpace(lei), 10, 64); err == nil {
			opts.FromSeq = last + 1
		}
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, CodeInternal, errors.New("response writer does not support streaming"))
		return
	}
	// The stream ends when the client disconnects or the server shuts down.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(a.streamCtx, cancel)
	defer stop()
	ch, err := a.srv.Subscribe(ctx, opts)
	if err != nil {
		if errors.Is(err, annotadb.ErrStreamDisabled) {
			writeError(w, http.StatusNotFound, CodeNotFound, err)
			return
		}
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, err)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // proxies must not buffer the stream
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	for ev := range ch {
		data, err := json.Marshal(toEventJSON(ev))
		if err != nil {
			return
		}
		// Gap events are synthetic and carry no id: a reconnect must resume
		// from the last real cursor, not from a per-subscriber artifact.
		if ev.Kind != annotadb.EventGap {
			fmt.Fprintf(w, "id: %d\n", ev.Cursor)
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Kind, data)
		flusher.Flush()
	}
}
