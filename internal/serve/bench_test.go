package serve

import (
	"context"
	"sync/atomic"
	"testing"

	"annotadb/internal/incremental"
	"annotadb/internal/mining"
	"annotadb/internal/relation"
)

// Benchmarks demonstrating the serving core's read-path property: readers
// work on an atomically loaded immutable snapshot, so throughput scales
// with GOMAXPROCS instead of flatlining on the engine's write lock. Run
// with e.g.
//
//	go test -bench . -cpu 1,2,4,8 ./internal/serve
//
// and compare BenchmarkSnapshotRead / BenchmarkRecommend (lock-free reads)
// against BenchmarkEngineRulesBaseline (every read clones under the engine
// mutex): the former's ns/op holds or improves as -cpu grows, the latter's
// degrades with contention.

func benchWorld(b *testing.B) (*Server, *incremental.Engine, *relation.Relation) {
	b.Helper()
	rel, _ := buildWorld(11, 400)
	eng, err := incremental.New(rel, mining.Config{MinSupport: 0.15, MinConfidence: 0.5, Parallelism: 1}, incremental.Options{})
	if err != nil {
		b.Fatal(err)
	}
	s := New(eng, Config{BatchWindow: 100_000}) // 100µs window
	b.Cleanup(func() {
		if err := s.Close(context.Background()); err != nil {
			b.Error(err)
		}
	})
	return s, eng, rel
}

// BenchmarkSnapshotRead measures the raw read path: one atomic load plus a
// walk over the immutable rule view.
func BenchmarkSnapshotRead(b *testing.B) {
	s, _, _ := benchWorld(b)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			snap := s.Snapshot()
			if snap.Rules.Len() == 0 {
				b.Fatal("empty rule view")
			}
		}
	})
}

// BenchmarkRecommend measures a full read request: snapshot load, tuple
// fetch from the published immutable view (no locks at all), rule
// evaluation.
func BenchmarkRecommend(b *testing.B) {
	s, _, rel := benchWorld(b)
	n := rel.Len()
	b.ReportAllocs()
	var ctr atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			idx := int(ctr.Add(1)) % n
			if _, _, err := s.Recommend(idx); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRecommendWhileWriting is the acceptance shape: concurrent
// readers recommending while a writer continuously applies annotation
// batches. Reader latency stays flat because a batch commit only swaps a
// pointer.
func BenchmarkRecommendWhileWriting(b *testing.B) {
	s, _, rel := benchWorld(b)
	dict := rel.Dictionary()
	a := relation.MustAnnotation(dict, "Annot_A")
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		ctx := context.Background()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			idx := i % rel.Len()
			if i%2 == 0 {
				_, _ = s.AddAnnotations(ctx, []relation.AnnotationUpdate{{Index: idx, Annotation: a}})
			} else {
				_, _ = s.RemoveAnnotations(ctx, []relation.AnnotationUpdate{{Index: idx, Annotation: a}})
			}
		}
	}()
	n := rel.Len()
	b.ReportAllocs()
	var ctr atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			idx := int(ctr.Add(1)) % n
			if _, _, err := s.Recommend(idx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	close(stop)
	<-writerDone
}

// BenchmarkEngineRulesBaseline is the pre-serving-layer read path for
// contrast: every call takes the engine mutex and deep-clones the rule set,
// so parallel readers serialize on the lock and allocate per call.
func BenchmarkEngineRulesBaseline(b *testing.B) {
	_, eng, _ := benchWorld(b)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if eng.Rules().Len() == 0 {
				b.Fatal("empty rule set")
			}
		}
	})
}

// BenchmarkWriteThroughput measures coalesced write commits: many
// goroutines submitting single-update batches that the writer loop merges.
func BenchmarkWriteThroughput(b *testing.B) {
	s, _, rel := benchWorld(b)
	dict := rel.Dictionary()
	a := relation.MustAnnotation(dict, "Annot_B")
	n := rel.Len()
	ctx := context.Background()
	b.ReportAllocs()
	var ctr atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := ctr.Add(1)
			idx := int(i) % n
			var err error
			if i%2 == 0 {
				_, err = s.AddAnnotations(ctx, []relation.AnnotationUpdate{{Index: idx, Annotation: a}})
			} else {
				_, err = s.RemoveAnnotations(ctx, []relation.AnnotationUpdate{{Index: idx, Annotation: a}})
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}
