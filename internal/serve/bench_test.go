package serve

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"annotadb/internal/incremental"
	"annotadb/internal/mining"
	"annotadb/internal/relation"
	"annotadb/internal/wal"
)

// Benchmarks demonstrating the serving core's read-path property: readers
// work on an atomically loaded immutable snapshot, so throughput scales
// with GOMAXPROCS instead of flatlining on the engine's write lock. Run
// with e.g.
//
//	go test -bench . -cpu 1,2,4,8 ./internal/serve
//
// and compare BenchmarkSnapshotRead / BenchmarkRecommend (lock-free reads)
// against BenchmarkEngineRulesBaseline (every read clones under the engine
// mutex): the former's ns/op holds or improves as -cpu grows, the latter's
// degrades with contention.

func benchWorld(b *testing.B) (*Server, *incremental.Engine, *relation.Relation) {
	b.Helper()
	rel, _ := buildWorld(11, 400)
	eng, err := incremental.New(rel, mining.Config{MinSupport: 0.15, MinConfidence: 0.5, Parallelism: 1}, incremental.Options{})
	if err != nil {
		b.Fatal(err)
	}
	s := New(eng, Config{BatchWindow: 100_000}) // 100µs window
	b.Cleanup(func() {
		if err := s.Close(context.Background()); err != nil {
			b.Error(err)
		}
	})
	return s, eng, rel
}

// BenchmarkSnapshotRead measures the raw read path: one atomic load plus a
// walk over the immutable rule view.
func BenchmarkSnapshotRead(b *testing.B) {
	s, _, _ := benchWorld(b)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			snap := s.Snapshot()
			if snap.Rules.Len() == 0 {
				b.Fatal("empty rule view")
			}
		}
	})
}

// BenchmarkRecommend measures a full read request: snapshot load, tuple
// fetch from the published immutable view (no locks at all), rule
// evaluation.
func BenchmarkRecommend(b *testing.B) {
	s, _, rel := benchWorld(b)
	n := rel.Len()
	b.ReportAllocs()
	var ctr atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			idx := int(ctr.Add(1)) % n
			if _, _, err := s.Recommend(idx); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRecommendWhileWriting is the acceptance shape: concurrent
// readers recommending while a writer continuously applies annotation
// batches. Reader latency stays flat because a batch commit only swaps a
// pointer.
func BenchmarkRecommendWhileWriting(b *testing.B) {
	s, _, rel := benchWorld(b)
	dict := rel.Dictionary()
	a := relation.MustAnnotation(dict, "Annot_A")
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		ctx := context.Background()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			idx := i % rel.Len()
			if i%2 == 0 {
				_, _ = s.AddAnnotations(ctx, []relation.AnnotationUpdate{{Index: idx, Annotation: a}})
			} else {
				_, _ = s.RemoveAnnotations(ctx, []relation.AnnotationUpdate{{Index: idx, Annotation: a}})
			}
		}
	}()
	n := rel.Len()
	b.ReportAllocs()
	var ctr atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			idx := int(ctr.Add(1)) % n
			if _, _, err := s.Recommend(idx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	close(stop)
	<-writerDone
}

// BenchmarkEngineRulesBaseline is the pre-serving-layer read path for
// contrast: every call takes the engine mutex and deep-clones the rule set,
// so parallel readers serialize on the lock and allocate per call.
func BenchmarkEngineRulesBaseline(b *testing.B) {
	_, eng, _ := benchWorld(b)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if eng.Rules().Len() == 0 {
				b.Fatal("empty rule set")
			}
		}
	})
}

// benchDurableServer builds the group-commit acceptance world: an 8K-tuple
// relation behind a real WAL store with Fsync-per-record durability, served
// with small batches so the fsync policy — not coalescing — is what the
// benchmark measures.
func benchDurableServer(b *testing.B, flushWindow time.Duration) (*Server, *relation.Relation) {
	b.Helper()
	rel, _ := buildWorld(17, 8000)
	store, err := wal.Open(wal.Options{
		Dir:         b.TempDir(),
		Sync:        wal.SyncAlways,
		FlushWindow: flushWindow,
	}, mining.Config{MinSupport: 0.15, MinConfidence: 0.5, Parallelism: 1}, incremental.Options{}, func() (*relation.Relation, error) {
		return rel, nil
	})
	if err != nil {
		b.Fatal(err)
	}
	s := New(store.Engine(), Config{BatchWindow: -1, MaxBatch: 8, QueueDepth: 4096, Journal: store})
	b.Cleanup(func() {
		// Server first: outstanding seal tickets need the store's committer.
		if err := s.Close(context.Background()); err != nil {
			b.Error(err)
		}
		if err := store.Close(); err != nil {
			b.Error(err)
		}
	})
	return s, rel
}

// BenchmarkGroupCommit is the tentpole acceptance benchmark: sustained
// fsync'd writes/sec on the 8K workload, per-batch fsync (FlushWindow 0,
// the legacy inline policy) against group commit (FlushWindow < 0: no
// linger, one fsync covers every batch sealed while the previous fsync was
// in flight). Both run SyncAlways with identical batching, so the ratio
// isolates the commit policy; the group-commit variant must sustain ≥5×.
func BenchmarkGroupCommit(b *testing.B) {
	for _, bc := range []struct {
		name   string
		window time.Duration
	}{
		{"fsync-per-batch", 0},
		{"group-commit", -1},
	} {
		b.Run(bc.name, func(b *testing.B) {
			s, rel := benchDurableServer(b, bc.window)
			a := relation.MustAnnotation(rel.Dictionary(), "Annot_A")
			n := rel.Len()
			ctx := context.Background()
			var ctr atomic.Uint64
			b.SetParallelism(16) // enough in-flight writers to queue batches behind a sync
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := ctr.Add(1)
					idx := int(i) % n
					var err error
					if i%2 == 0 {
						_, err = s.AddAnnotations(ctx, []relation.AnnotationUpdate{{Index: idx, Annotation: a}})
					} else {
						_, err = s.RemoveAnnotations(ctx, []relation.AnnotationUpdate{{Index: idx, Annotation: a}})
					}
					if err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "writes/sec")
		})
	}
}

// BenchmarkWriteThroughput measures coalesced write commits: many
// goroutines submitting single-update batches that the writer loop merges.
func BenchmarkWriteThroughput(b *testing.B) {
	s, _, rel := benchWorld(b)
	dict := rel.Dictionary()
	a := relation.MustAnnotation(dict, "Annot_B")
	n := rel.Len()
	ctx := context.Background()
	b.ReportAllocs()
	var ctr atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := ctr.Add(1)
			idx := int(i) % n
			var err error
			if i%2 == 0 {
				_, err = s.AddAnnotations(ctx, []relation.AnnotationUpdate{{Index: idx, Annotation: a}})
			} else {
				_, err = s.RemoveAnnotations(ctx, []relation.AnnotationUpdate{{Index: idx, Annotation: a}})
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}
