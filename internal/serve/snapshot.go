package serve

import (
	"annotadb/internal/correlate"
	"annotadb/internal/incremental"
	"annotadb/internal/predict"
	"annotadb/internal/relation"
	"annotadb/internal/rules"
)

// Snapshot is one published generation of serving state. Everything in it
// is immutable, so a Snapshot may be read by any number of goroutines
// without synchronization, and a reader that holds one observes a single
// consistent generation no matter how many batches the writer applies
// meanwhile. In particular View and Rules are captured under one engine
// lock acquisition, so tuple contents and the rule set always pair: a tuple
// annotated after this snapshot was published is invisible to it, exactly
// as the rules mined before that annotation are the ones evaluating it.
// Seq gives downstream caches a cheap staleness key (the root facade
// memoizes token-rendered rules per Seq).
type Snapshot struct {
	// Seq is the publish sequence number, strictly increasing.
	Seq uint64
	// N is the relation size the rules' denominators refer to.
	N int
	// MinCount is the absolute support threshold at publish time.
	MinCount int
	// RelVersion is the relation's mutation counter at publish time; the
	// live relation's Version minus this value is the snapshot's staleness.
	RelVersion uint64
	// EngineStats are the engine lifetime counters at publish time.
	EngineStats incremental.Stats
	// View is the immutable relation generation the rules were maintained
	// against. All tuple reads answered from this snapshot come from it —
	// never from the live relation — so reads take no relation lock.
	View *relation.View
	// Rules is the immutable valid rule set.
	Rules *rules.View
	// Candidates is the near-miss candidate tier of the same generation,
	// captured under the same engine lock as Rules. The stream hook diffs
	// consecutive snapshots' tiers into churn events; readers may also use
	// it to inspect rules hovering below the thresholds.
	Candidates *rules.View
	// Compiled evaluates recommendations against Rules.
	Compiled *predict.Compiled
	// Attachments and DistinctAnnotations summarize View's frequency
	// table, folded once at publish so stats polls do no per-call work.
	Attachments         int
	DistinctAnnotations int
	// Correlate caches this generation's correlate index: built lazily by
	// the first /correlate query against the snapshot, unreachable (and so
	// invalidated) as soon as the next publish swaps the snapshot out.
	Correlate *correlate.Lazy
}
