package serve

import (
	"annotadb/internal/incremental"
	"annotadb/internal/predict"
	"annotadb/internal/rules"
)

// Snapshot is one published generation of serving state. Everything in it
// is immutable, so a Snapshot may be read by any number of goroutines
// without synchronization, and a reader that holds one observes a single
// consistent generation no matter how many batches the writer applies
// meanwhile. Seq gives downstream caches a cheap staleness key (the root
// facade memoizes token-rendered rules per Seq).
type Snapshot struct {
	// Seq is the publish sequence number, strictly increasing.
	Seq uint64
	// N is the relation size the rules' denominators refer to.
	N int
	// MinCount is the absolute support threshold at publish time.
	MinCount int
	// RelVersion is the relation's mutation counter at publish time.
	RelVersion uint64
	// EngineStats are the engine lifetime counters at publish time.
	EngineStats incremental.Stats
	// Rules is the immutable valid rule set.
	Rules *rules.View
	// Compiled evaluates recommendations against Rules.
	Compiled *predict.Compiled
}
