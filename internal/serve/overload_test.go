package serve

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"annotadb/internal/relation"
)

// gatedJournal blocks every Log* call on gate until release is closed,
// letting tests pin the writer mid-apply so the admission queue fills
// deterministically.
type gatedJournal struct {
	gate    chan struct{} // receives one token per Log* call entered
	release chan struct{}
}

func newGatedJournal() *gatedJournal {
	return &gatedJournal{gate: make(chan struct{}, 64), release: make(chan struct{})}
}

func (j *gatedJournal) block() {
	j.gate <- struct{}{}
	<-j.release
}

func (j *gatedJournal) LogAnnotations([]relation.AnnotationUpdate, bool) error {
	j.block()
	return nil
}
func (j *gatedJournal) LogTuples([]relation.Tuple) error { j.block(); return nil }
func (j *gatedJournal) Committed() error                 { return nil }

// failCommittedJournal fails Committed while armed and succeeds otherwise.
type failCommittedJournal struct {
	mu  sync.Mutex
	err error
}

func (j *failCommittedJournal) arm(err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.err = err
}

func (j *failCommittedJournal) LogAnnotations([]relation.AnnotationUpdate, bool) error { return nil }
func (j *failCommittedJournal) LogTuples([]relation.Tuple) error                       { return nil }
func (j *failCommittedJournal) Committed() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// manualGroupJournal is a GroupJournal whose seal tickets the test resolves
// by hand, exposing the ack-gating contract directly.
type manualGroupJournal struct {
	sealed chan chan error
}

func (j *manualGroupJournal) LogAnnotations([]relation.AnnotationUpdate, bool) error { return nil }
func (j *manualGroupJournal) LogTuples([]relation.Tuple) error                       { return nil }
func (j *manualGroupJournal) Committed() error                                       { return nil }
func (j *manualGroupJournal) Seal() <-chan error {
	t := make(chan error, 1)
	j.sealed <- t
	return t
}

func oneUpdate(t *testing.T, rel *relation.Relation, idx int) []relation.AnnotationUpdate {
	t.Helper()
	a1, ok := rel.Dictionary().Lookup("Annot_1")
	if !ok {
		t.Fatal("fixture is missing Annot_1")
	}
	return []relation.AnnotationUpdate{{Index: idx, Annotation: a1}}
}

// TestOverloadShedsWithExactCounters pins the bounded-admission contract: a
// queue that stays full for a whole batch window sheds with ErrOverloaded
// (within roughly the window, not after an unbounded block), a cancelled
// context is the caller's error rather than a shed, and Requests/Shed count
// exactly the accepted and refused submissions.
func TestOverloadShedsWithExactCounters(t *testing.T) {
	t.Parallel()
	j := newGatedJournal()
	rel := fixture()
	window := 5 * time.Millisecond
	s, _ := mustServer(t, rel, testCfg(), Config{BatchWindow: window, QueueDepth: 1, Journal: j})
	ctx := context.Background()

	// First write: the writer collects it (after its linger) and blocks in
	// the journal append.
	first := make(chan error, 1)
	go func() {
		_, err := s.AddAnnotations(ctx, oneUpdate(t, rel, 0))
		first <- err
	}()
	select {
	case <-j.gate:
	case <-time.After(5 * time.Second):
		t.Fatal("writer never reached the journal")
	}

	// Second write: fills the queue (depth 1) and stays there.
	second := make(chan error, 1)
	go func() {
		_, err := s.AddAnnotations(ctx, oneUpdate(t, rel, 1))
		second <- err
	}()
	waitQueueFull := func() {
		deadline := time.Now().Add(5 * time.Second)
		for len(s.reqs) == 0 {
			if time.Now().After(deadline) {
				t.Fatal("second write never queued")
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	waitQueueFull()

	// Third write: queue full, writer pinned — must shed within roughly the
	// batch window instead of blocking behind the stall.
	start := time.Now()
	_, err := s.AddAnnotations(ctx, oneUpdate(t, rel, 2))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated submit error = %v, want ErrOverloaded", err)
	}
	if waited := time.Since(start); waited > window+2*time.Second {
		t.Fatalf("shed took %v, want about one batch window (%v)", waited, window)
	}

	// Cancelled context during admission: the caller's error, not a shed.
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := s.AddAnnotations(cancelled, oneUpdate(t, rel, 3)); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled submit error = %v, want context.Canceled", err)
	}

	// Release the writer: the two admitted writes must complete cleanly.
	close(j.release)
	for i, ch := range []chan error{first, second} {
		select {
		case err := <-ch:
			if err != nil {
				t.Fatalf("admitted write %d failed: %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("admitted write %d never acknowledged", i)
		}
	}

	st := s.Stats()
	if st.Requests != 2 {
		t.Errorf("Requests = %d, want 2 (shed and cancelled submissions are not accepted)", st.Requests)
	}
	if st.Shed != 1 {
		t.Errorf("Shed = %d, want exactly 1 (the context cancellation is not a shed)", st.Shed)
	}
	if st.Latency.Queue.Count == 0 || st.Latency.Apply.Count == 0 || st.Latency.Publish.Count == 0 {
		t.Errorf("latency stages unobserved: %+v", st.Latency)
	}
}

// TestOverloadNoGoroutineLeaks hammers a saturated server with shed and
// cancelled submissions, closes it, and checks the goroutine count settles
// back — no acker, admission waiter, or writer left behind.
func TestOverloadNoGoroutineLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	j := newGatedJournal()
	rel := fixture()
	// Close is idempotent, so mustServer's cleanup after our own Close is a
	// no-op.
	s, _ := mustServer(t, rel, testCfg(), Config{BatchWindow: time.Millisecond, QueueDepth: 1, Journal: j})
	ctx := context.Background()

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cctx := ctx
			if i%2 == 0 {
				var cancel context.CancelFunc
				cctx, cancel = context.WithTimeout(ctx, time.Duration(i)*100*time.Microsecond)
				defer cancel()
			}
			_, _ = s.AddAnnotations(cctx, oneUpdate(t, rel, i%5))
		}(i)
	}
	// Let the storm hit the gate, then unblock and shut down.
	time.Sleep(10 * time.Millisecond)
	close(j.release)
	wg.Wait()
	closeCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := s.Close(closeCtx); err != nil {
		t.Fatalf("close after overload storm: %v", err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 { // slack for runtime helpers
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines: %d before, %d after close\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShutdownDrainsAdmittedWrites pins the drain contract: every write the
// queue admitted before Close must be applied and acknowledged with its real
// result — never dropped, never left hanging — including acks parked behind
// a group-commit ticket.
func TestShutdownDrainsAdmittedWrites(t *testing.T) {
	t.Parallel()
	j := newGatedJournal()
	rel := fixture()
	s, _ := mustServer(t, rel, testCfg(), Config{BatchWindow: -1, QueueDepth: 8, Journal: j})

	// Pin the writer, then admit a backlog.
	firstDone := make(chan error, 1)
	go func() {
		_, err := s.AddAnnotations(context.Background(), oneUpdate(t, rel, 0))
		firstDone <- err
	}()
	select {
	case <-j.gate:
	case <-time.After(5 * time.Second):
		t.Fatal("writer never reached the journal")
	}
	const backlog = 5
	done := make(chan error, backlog)
	for i := 0; i < backlog; i++ {
		go func(i int) {
			_, err := s.AddAnnotations(context.Background(), oneUpdate(t, rel, 1+i%4))
			done <- err
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(s.reqs) < backlog {
		if time.Now().After(deadline) {
			t.Fatalf("backlog never queued: %d of %d", len(s.reqs), backlog)
		}
		time.Sleep(100 * time.Microsecond)
	}

	// Close while the backlog is admitted-but-unapplied, then release the
	// journal so the drain can run.
	closed := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		closed <- s.Close(ctx)
	}()
	close(j.release)

	for i := 0; i < backlog+1; i++ {
		var ch chan error = done
		if i == backlog {
			ch = firstDone
		}
		select {
		case err := <-ch:
			if err != nil {
				t.Fatalf("admitted write failed at shutdown: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("admitted write never acknowledged after Close")
		}
	}
	if err := <-closed; err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestGroupJournalGatesAcksOnSeal pins the group-commit ack contract: a
// batch applied against a GroupJournal is not acknowledged until its seal
// ticket resolves, a nil resolution acks the batch's own results, and an
// error resolution overrides them with ErrJournal.
func TestGroupJournalGatesAcksOnSeal(t *testing.T) {
	t.Parallel()
	j := &manualGroupJournal{sealed: make(chan chan error, 4)}
	rel := fixture()
	s, _ := mustServer(t, rel, testCfg(), Config{BatchWindow: -1, Journal: j})
	ctx := context.Background()

	ack := make(chan error, 1)
	go func() {
		_, err := s.AddAnnotations(ctx, oneUpdate(t, rel, 0))
		ack <- err
	}()
	var ticket chan error
	select {
	case ticket = <-j.sealed:
	case <-time.After(5 * time.Second):
		t.Fatal("writer never sealed the batch")
	}
	select {
	case err := <-ack:
		t.Fatalf("write acknowledged (err=%v) before the seal ticket resolved", err)
	case <-time.After(50 * time.Millisecond):
	}
	ticket <- nil
	select {
	case err := <-ack:
		if err != nil {
			t.Fatalf("write failed after clean seal: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("write never acknowledged after the seal resolved")
	}
	if st := s.Stats(); st.Latency.Fsync.Count == 0 {
		t.Errorf("Fsync latency unobserved after a sealed batch: %+v", st.Latency)
	}

	// A failed covering fsync must fail the batch with ErrJournal even
	// though apply and publish succeeded.
	go func() {
		_, err := s.AddAnnotations(ctx, oneUpdate(t, rel, 1))
		ack <- err
	}()
	select {
	case ticket = <-j.sealed:
	case <-time.After(5 * time.Second):
		t.Fatal("writer never sealed the second batch")
	}
	ticket <- errors.New("sync wal.log: input/output error")
	select {
	case err := <-ack:
		if !errors.Is(err, ErrJournal) {
			t.Fatalf("failed-seal write error = %v, want ErrJournal", err)
		}
		if !strings.Contains(err.Error(), "input/output error") {
			t.Fatalf("failed-seal write error %q does not carry the fsync cause", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("write never acknowledged after the seal failed")
	}
	if st := s.Stats(); st.JournalErrors == 0 {
		t.Error("JournalErrors did not count the failed covering fsync")
	}
}

// TestCommittedFailureLatchesJournalErr pins the satellite bugfix: a failed
// post-publish Committed call used to only bump a counter; it must latch
// into JournalErr (for health probes) and clear on the next success, since
// the checkpoint policy retries.
func TestCommittedFailureLatchesJournalErr(t *testing.T) {
	t.Parallel()
	j := &failCommittedJournal{}
	rel := fixture()
	s, _ := mustServer(t, rel, testCfg(), Config{BatchWindow: -1, Journal: j})
	ctx := context.Background()

	if err := s.JournalErr(); err != nil {
		t.Fatalf("fresh server JournalErr = %v, want nil", err)
	}
	j.arm(errors.New("write checkpoint.db: no space left on device"))
	if _, err := s.AddAnnotations(ctx, oneUpdate(t, rel, 0)); err != nil {
		t.Fatalf("write must succeed (its record is logged; only the checkpoint failed): %v", err)
	}
	// Committed runs after the ack; poll for the latch.
	deadline := time.Now().Add(5 * time.Second)
	for s.JournalErr() == nil {
		if time.Now().After(deadline) {
			t.Fatal("Committed failure never latched into JournalErr")
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.JournalErr(); !strings.Contains(err.Error(), "no space left") {
		t.Fatalf("JournalErr = %v, want the Committed cause", err)
	}
	if st := s.Stats(); st.JournalErrors == 0 {
		t.Error("JournalErrors did not count the Committed failure")
	}

	// The next successful Committed clears the latch: the pipeline healed.
	j.arm(nil)
	if _, err := s.AddAnnotations(ctx, oneUpdate(t, rel, 1)); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for s.JournalErr() != nil {
		if time.Now().After(deadline) {
			t.Fatalf("JournalErr still latched after a successful Committed: %v", s.JournalErr())
		}
		time.Sleep(time.Millisecond)
	}
}
