package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"annotadb/internal/relation"
)

// recordingJournal captures the writer's journal calls and can be armed to
// fail the next append. The mutex makes it safe to inspect from the test
// goroutine: Log* calls happen before the ack, but Committed deliberately
// runs after it, so the test must synchronize (and poll) rather than rely
// on the ack as a happens-before edge.
type recordingJournal struct {
	mu        sync.Mutex
	annots    [][]relation.AnnotationUpdate
	removals  [][]relation.AnnotationUpdate
	tuples    [][]relation.Tuple
	committed int
	failNext  error
}

// takeFailure consumes the armed failure; callers must hold mu.
func (j *recordingJournal) takeFailure() error {
	err := j.failNext
	j.failNext = nil
	return err
}

func (j *recordingJournal) arm(err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.failNext = err
}

func (j *recordingJournal) snapshot() (annots, removals int, tuples, committed int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.annots), len(j.removals), len(j.tuples), j.committed
}

func (j *recordingJournal) waitCommitted(t *testing.T, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		j.mu.Lock()
		c := j.committed
		j.mu.Unlock()
		if c >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("Committed not called %d times within deadline", n)
}

func (j *recordingJournal) LogAnnotations(updates []relation.AnnotationUpdate, remove bool) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.takeFailure(); err != nil {
		return err
	}
	cp := append([]relation.AnnotationUpdate(nil), updates...)
	if remove {
		j.removals = append(j.removals, cp)
	} else {
		j.annots = append(j.annots, cp)
	}
	return nil
}

func (j *recordingJournal) LogTuples(tuples []relation.Tuple) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.takeFailure(); err != nil {
		return err
	}
	j.tuples = append(j.tuples, append([]relation.Tuple(nil), tuples...))
	return nil
}

func (j *recordingJournal) Committed() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.takeFailure(); err != nil {
		return err
	}
	j.committed++
	return nil
}

func TestJournalReceivesEveryBatchBeforeAck(t *testing.T) {
	j := &recordingJournal{}
	rel := fixture()
	s, _ := mustServer(t, rel, testCfg(), Config{BatchWindow: -1, Journal: j})
	ctx := context.Background()
	dict := rel.Dictionary()
	a1, _ := dict.Lookup("Annot_1")

	if _, err := s.AddAnnotations(ctx, []relation.AnnotationUpdate{{Index: 5, Annotation: a1}}); err != nil {
		t.Fatal(err)
	}
	// The ack happens after the journal append, so the batch is visible
	// now; Committed runs after the ack, so it is polled.
	j.mu.Lock()
	if len(j.annots) != 1 || len(j.annots[0]) != 1 || j.annots[0][0].Index != 5 {
		t.Fatalf("journaled annotation batches = %+v, want the submitted batch", j.annots)
	}
	j.mu.Unlock()
	j.waitCommitted(t, 1)

	if _, err := s.RemoveAnnotations(ctx, []relation.AnnotationUpdate{{Index: 5, Annotation: a1}}); err != nil {
		t.Fatal(err)
	}
	if _, removals, _, _ := j.snapshot(); removals != 1 {
		t.Fatalf("journaled removal batches = %d, want 1", removals)
	}

	if _, err := s.AddTuples(ctx, []relation.Tuple{relation.MustTuple(dict, []string{"28"}, nil)}); err != nil {
		t.Fatal(err)
	}
	if _, _, tuples, _ := j.snapshot(); tuples != 1 {
		t.Fatalf("journaled tuple batches = %d, want 1", tuples)
	}

	// Empty batches are answered without touching the writer or journal.
	before, _, _, _ := j.snapshot()
	if _, err := s.AddAnnotations(ctx, nil); err != nil {
		t.Fatal(err)
	}
	if after, _, _, _ := j.snapshot(); after != before {
		t.Error("empty batch reached the journal")
	}
}

func TestJournalFailureFailsBatchWithoutApplying(t *testing.T) {
	j := &recordingJournal{}
	rel := fixture()
	s, eng := mustServer(t, rel, testCfg(), Config{BatchWindow: -1, Journal: j})
	ctx := context.Background()
	a1, _ := rel.Dictionary().Lookup("Annot_1")

	versionBefore := rel.Version()
	boom := errors.New("disk full")
	j.arm(boom)
	_, err := s.AddAnnotations(ctx, []relation.AnnotationUpdate{{Index: 5, Annotation: a1}})
	if !errors.Is(err, boom) {
		t.Fatalf("AddAnnotations under journal failure = %v, want wrapped %v", err, boom)
	}
	// Write-ahead contract: a batch the log rejected must not reach the
	// engine, or recovery would silently lose it.
	if got := rel.Version(); got != versionBefore {
		t.Errorf("relation version advanced to %d despite journal failure (was %d)", got, versionBefore)
	}
	if st := s.Stats(); st.JournalErrors != 1 {
		t.Errorf("JournalErrors = %d, want 1", st.JournalErrors)
	}
	// The server keeps serving: the same batch succeeds on retry.
	if _, err := s.AddAnnotations(ctx, []relation.AnnotationUpdate{{Index: 5, Annotation: a1}}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Verify(); err != nil {
		t.Errorf("engine diverged after journal failure: %v", err)
	}
}
