// Package serve turns the incremental maintenance engine into a concurrent
// serving core: a single-writer/many-reader wrapper in which readers work
// exclusively against an atomically published immutable Snapshot and never
// touch the engine's lock, while all mutations funnel through one writer
// goroutine that coalesces concurrently submitted batches (the paper's
// Cases 1–3 plus removal) into fewer engine applications and publishes a
// fresh snapshot after each.
//
// The design follows the workload shape the paper implies but does not
// build: many continuous "what correlates with X" / "what is tuple t
// missing" queries against a rule set that is being maintained online.
// Readers scale with GOMAXPROCS because a read is an atomic pointer load
// plus work on immutable data; writers pay the engine's incremental
// maintenance cost once per coalesced batch, not once per client call.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"annotadb/internal/correlate"
	"annotadb/internal/incremental"
	"annotadb/internal/metrics"
	"annotadb/internal/predict"
	"annotadb/internal/relation"
	"annotadb/internal/rules"
	"annotadb/internal/stream"
)

// ErrClosed is returned by write methods after Close.
var ErrClosed = errors.New("serve: server closed")

// ErrJournal wraps write failures caused by the durability journal (e.g. a
// full disk under the write-ahead log). The request itself was valid, so
// transports should map it to a server-side failure status, not a
// bad-request one.
var ErrJournal = errors.New("serve: journal failure")

// ErrOverloaded is returned by write methods when the admission queue is
// full and no slot opened within one batch window: the writer is saturated
// and queueing longer would only grow every client's latency. The request
// was not admitted and had no effect; clients should back off and retry.
// Transports map it to 429 Too Many Requests with a Retry-After hint.
var ErrOverloaded = errors.New("serve: overloaded, admission queue full")

// Default tuning values; see Config.
const (
	DefaultBatchWindow = time.Millisecond
	DefaultMaxBatch    = 4096
	DefaultQueueDepth  = 128
)

// Journal is the durability hook the writer loop drives (implemented by
// the wal package's Store). The contract mirrors a classic write-ahead
// log: for every coalesced group the writer first calls LogAnnotations or
// LogTuples — an error fails the whole group before the engine is touched,
// so the durable log never lags an acknowledged write — and after the
// batch is applied, the fresh snapshot published, and the waiters
// acknowledged it calls Committed, which is the journal's moment to run
// its checkpoint policy. All three methods are called from the single
// writer goroutine only.
type Journal interface {
	// LogAnnotations records an annotation batch; remove distinguishes
	// detachment from attachment.
	LogAnnotations(updates []relation.AnnotationUpdate, remove bool) error
	// LogTuples records a tuple batch.
	LogTuples(tuples []relation.Tuple) error
	// Committed reports that every record logged so far is applied,
	// published, and acknowledged — the journal's moment to checkpoint
	// without holding up any waiter. Errors are counted
	// (Stats.JournalErrors), not fatal.
	Committed() error
}

// GroupJournal is a Journal whose appends may defer their fsync to a group
// committer (the wal package's Store with a flush window configured). After
// applying and publishing a coalesced batch the writer calls Seal instead of
// assuming the appends are already durable:
//
//   - a nil return means every record logged so far is durable at return
//     (group commit off, or a sync policy that never gates acks on fsync) —
//     the writer acknowledges waiters inline, exactly as with a plain
//     Journal;
//   - a non-nil ticket resolves with one value once a single covering fsync
//     has made every record logged before the Seal call durable (nil), or
//     with the sync error that latched the journal. The writer hands the
//     batch's acknowledgements to its acker goroutine keyed on the ticket
//     and immediately starts collecting the next batch, so the fsync of
//     batch n overlaps the application of batch n+1 — the group-commit
//     pipeline.
//
// Seal is called from the single writer goroutine only.
type GroupJournal interface {
	Journal
	Seal() <-chan error
}

// Latency aggregates the write path's per-stage latency histograms: queue
// wait (submit accepted to batch collection), apply (one journaled engine
// application), fsync (seal to covering group-commit fsync; empty unless
// the journal group-commits), and publish (snapshot capture + rule compile).
// A zero Latency is ready to use. Share one instance across the per-shard
// serving cores of a sharded router (Config.Latency) to get merged numbers.
type Latency struct {
	Queue   metrics.Histogram
	Apply   metrics.Histogram
	Fsync   metrics.Histogram
	Publish metrics.Histogram
}

// Stats digests every stage histogram at once.
func (l *Latency) Stats() LatencyStats {
	return LatencyStats{
		Queue:   l.Queue.Summary(),
		Apply:   l.Apply.Summary(),
		Fsync:   l.Fsync.Summary(),
		Publish: l.Publish.Summary(),
	}
}

// LatencyStats is a point-in-time digest of Latency, one summary per
// pipeline stage.
type LatencyStats struct {
	Queue   metrics.Summary
	Apply   metrics.Summary
	Fsync   metrics.Summary
	Publish metrics.Summary
}

// Config tunes the serving core.
type Config struct {
	// BatchWindow is how long the writer waits after the first pending
	// update for more updates to coalesce before applying the batch.
	// Zero means DefaultBatchWindow; negative disables waiting (each
	// application still absorbs everything already queued).
	BatchWindow time.Duration
	// MaxBatch caps the number of individual updates (annotation
	// attachments or tuples) coalesced into one engine application.
	// Zero means DefaultMaxBatch.
	MaxBatch int
	// QueueDepth is the capacity of the pending-request channel. A writer
	// that finds it full waits at most one batch window for a slot, then
	// fails with ErrOverloaded — bounded admission instead of unbounded
	// queueing. Zero means DefaultQueueDepth.
	QueueDepth int
	// Latency, when non-nil, is the per-stage latency recorder the writer
	// observes into; share one instance across shards for merged numbers.
	// Nil makes the server allocate a private one (Stats reports it either
	// way).
	Latency *Latency
	// Recommend filters the rules compiled into each snapshot's
	// recommendation evaluator.
	Recommend predict.Options
	// Journal, when non-nil, write-ahead logs every batch before it is
	// applied. Nil serves purely in memory.
	Journal Journal
	// Stream, when non-nil, receives the rule churn of every published
	// snapshot: after each publish the writer diffs the outgoing and
	// incoming rule tiers (valid and candidate) and appends the typed
	// events — promoted, demoted, added, retired, confidence changed — to
	// the stream broker, stamped with the new snapshot's Seq. The initial
	// publish emits nothing: it is the baseline later generations diff
	// against (on a durable reopen that baseline is the recovered state, so
	// a restart does not replay the whole rule set as rule_added churn).
	Stream *stream.Publisher
}

func (c Config) batchWindow() time.Duration {
	if c.BatchWindow == 0 {
		return DefaultBatchWindow
	}
	return c.BatchWindow
}

func (c Config) maxBatch() int {
	if c.MaxBatch <= 0 {
		return DefaultMaxBatch
	}
	return c.MaxBatch
}

func (c Config) queueDepth() int {
	if c.QueueDepth <= 0 {
		return DefaultQueueDepth
	}
	return c.QueueDepth
}

type opKind uint8

const (
	opAnnotations opKind = iota
	opRemovals
	opTuples
)

// reportCase maps a request kind to the update case its report carries.
// Tuple batches report Case 2: an empty batch trivially has no annotations.
func (k opKind) reportCase() incremental.Case {
	switch k {
	case opRemovals:
		return incremental.CaseRemoveAnnotations
	case opTuples:
		return incremental.CaseUnannotatedTuples
	default:
		return incremental.CaseNewAnnotations
	}
}

type result struct {
	rep *incremental.Report
	err error
}

type request struct {
	kind     opKind
	updates  []relation.AnnotationUpdate // opAnnotations, opRemovals
	tuples   []relation.Tuple            // opTuples
	done     chan result                 // buffered(1); writer never blocks
	enqueued time.Time                   // when submit stamped it (queue-wait metric)
}

func (r *request) size() int {
	if r.kind == opTuples {
		return len(r.tuples)
	}
	return len(r.updates)
}

// Server is the concurrent serving core. Construct with New; the zero value
// is not usable. After New, the server owns the engine and its relation:
// route every mutation through the server.
type Server struct {
	eng *incremental.Engine
	rel *relation.Relation
	cfg Config

	snap atomic.Pointer[Snapshot]
	seq  atomic.Uint64

	reqs chan *request
	quit chan struct{} // closed by Close
	done chan struct{} // closed when the writer loop AND the acker have drained

	// acks carries batches whose acknowledgements wait on a group-commit
	// fsync ticket from the writer to the acker goroutine; ackDone closes
	// when the acker has delivered everything.
	acks    chan pendingAck
	ackDone chan struct{}

	lat *Latency

	closeOnce sync.Once

	// counters
	requests    atomic.Uint64 // write requests accepted into the queue
	shed        atomic.Uint64 // write requests refused with ErrOverloaded
	batches     atomic.Uint64 // engine applications
	coalesced   atomic.Uint64 // requests that shared an application with another
	reads       atomic.Uint64 // snapshot loads
	journalErrs atomic.Uint64 // journal failures (failed groups + Committed errors)

	// commitErr latches the journal's most recent Committed failure until
	// the next Committed succeeds, so health probes surface a checkpoint
	// pipeline that silently stopped installing (a counter alone cannot
	// distinguish "failed once, recovered" from "failing every time").
	commitErr atomic.Pointer[error]
}

// pendingAck is one applied-and-published batch whose waiters are
// acknowledged only after its group-commit fsync ticket resolves.
type pendingAck struct {
	groups  [][]*request
	results []result
	ticket  <-chan error
	sealed  time.Time
}

// New wraps eng in a serving core and starts its writer loop. The initial
// snapshot is published before New returns, so reads are immediately valid.
func New(eng *incremental.Engine, cfg Config) *Server {
	lat := cfg.Latency
	if lat == nil {
		lat = &Latency{}
	}
	s := &Server{
		eng:     eng,
		rel:     eng.Relation(),
		cfg:     cfg,
		reqs:    make(chan *request, cfg.queueDepth()),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
		acks:    make(chan pendingAck, cfg.queueDepth()),
		ackDone: make(chan struct{}),
		lat:     lat,
	}
	s.publish()
	go s.run()
	return s
}

// Close stops the writer loop after draining already queued updates, waiting
// up to ctx for the drain. Write calls racing with Close may fail with
// ErrClosed. Close is idempotent; reads remain valid (and final) afterwards.
func (s *Server) Close(ctx context.Context) error {
	s.closeOnce.Do(func() { close(s.quit) })
	select {
	case <-s.done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: close: %w", ctx.Err())
	}
}

// --- read path -----------------------------------------------------------

// Snapshot returns the current published snapshot: an atomic pointer load,
// never nil, never blocked by writers.
func (s *Server) Snapshot() *Snapshot {
	s.reads.Add(1)
	return s.snap.Load()
}

// Seq returns the sequence of the currently published snapshot without
// counting as a served read (it is bookkeeping, not traffic). Because the
// writer publishes before it acks, the value loaded after a write's ack is
// at or beyond the sequence that made the write visible.
func (s *Server) Seq() uint64 {
	return s.snap.Load().Seq
}

// Rules returns the current valid rules in deterministic order. The slice
// is shared with the snapshot; callers must not modify it.
func (s *Server) Rules() []rules.Rule {
	return s.Snapshot().Rules.Sorted()
}

// Recommend evaluates the snapshot's rules against the tuple at position
// idx and reports the snapshot sequence it answered from. Both the tuple
// contents and the rules come from the same published generation — one
// atomic snapshot load, zero relation lock acquisitions — so a reader can
// never see a tuple annotated after the rules it is scored against. An
// index valid in the live relation but not yet in the snapshot (the tuple
// was appended after the last publish) reports ErrTupleIndex: the tuple
// does not exist in this generation.
func (s *Server) Recommend(idx int) ([]predict.Recommendation, uint64, error) {
	snap := s.Snapshot()
	tu, err := snap.View.Tuple(idx)
	if err != nil {
		return nil, snap.Seq, err
	}
	return snap.Compiled.ForTupleAt(tu, idx), snap.Seq, nil
}

// RecommendIncoming evaluates a free-standing tuple (the paper's insert
// trigger, §5 case 2) against the snapshot's rules.
func (s *Server) RecommendIncoming(tu relation.Tuple) []predict.Recommendation {
	return s.Snapshot().Compiled.ForTuple(tu)
}

// Stats reports serving counters plus the published snapshot's identity.
type Stats struct {
	// Snapshot identity.
	Seq        uint64
	N          int
	RuleCount  int
	MinCount   int
	RelVersion uint64
	// LiveRelVersion is the live relation's mutation counter at the moment
	// Stats ran; LiveRelVersion - RelVersion is the published snapshot's
	// staleness in relation mutations (0 when the writer is idle).
	LiveRelVersion uint64
	// Attachments and DistinctAnnotations describe the snapshot's relation
	// generation: total (tuple, annotation) pairs and annotations appearing
	// on at least one tuple.
	Attachments         int
	DistinctAnnotations int
	// Server counters.
	Requests  uint64 // write requests accepted
	Shed      uint64 // write requests refused with ErrOverloaded
	Batches   uint64 // engine applications after coalescing
	Coalesced uint64 // requests that shared an application
	Reads     uint64 // snapshot loads served
	// JournalErrors counts journal failures: groups rejected because their
	// write-ahead log append failed, plus post-publish Committed errors.
	JournalErrors uint64
	// Latency digests the write path's per-stage histograms. On a sharded
	// server every shard observes into one shared recorder, so the digest
	// is already merged.
	Latency LatencyStats
	// Engine lifetime counters as of the snapshot.
	Engine incremental.Stats
}

// Stats returns current serving statistics. The relation section
// (Attachments, DistinctAnnotations) was folded from the snapshot's frozen
// frequency table at publish time; only LiveRelVersion reads the live
// relation (one short RLock), so polling Stats cannot stall the writer
// behind an O(n) scan.
func (s *Server) Stats() Stats {
	snap := s.snap.Load()
	return Stats{
		Seq:                 snap.Seq,
		N:                   snap.N,
		RuleCount:           snap.Rules.Len(),
		MinCount:            snap.MinCount,
		RelVersion:          snap.RelVersion,
		LiveRelVersion:      s.rel.Version(),
		Attachments:         snap.Attachments,
		DistinctAnnotations: snap.DistinctAnnotations,
		Requests:            s.requests.Load(),
		Shed:                s.shed.Load(),
		Batches:             s.batches.Load(),
		Coalesced:           s.coalesced.Load(),
		Reads:               s.reads.Load(),
		JournalErrors:       s.journalErrs.Load(),
		Latency:             s.lat.Stats(),
		Engine:              snap.EngineStats,
	}
}

// JournalErr reports the journal's latched Committed failure: non-nil from
// the moment a post-publish Committed call fails until the next one
// succeeds. Acknowledged writes are unaffected (their records are in the
// durable log), but checkpoints have stopped installing, so recovery cost
// grows without bound — health probes surface this as degraded. Safe from
// any goroutine.
func (s *Server) JournalErr() error {
	if p := s.commitErr.Load(); p != nil {
		return fmt.Errorf("serve: journal checkpoint pipeline failing: %w", *p)
	}
	return nil
}

// --- write path ----------------------------------------------------------

// AddAnnotations submits a Case 3 batch and waits for it to be applied.
// The returned report covers the whole coalesced engine application the
// batch rode in, which may include other clients' updates. Duplicate
// attachments are skipped, not errors, matching the engine.
//
// The batch is validated up front so that a bad update cannot poison a
// coalesced application: indexes must be in range now (the relation only
// grows, so they stay in range) and items must be annotations.
func (s *Server) AddAnnotations(ctx context.Context, updates []relation.AnnotationUpdate) (*incremental.Report, error) {
	if err := s.validateUpdates(updates); err != nil {
		return nil, err
	}
	return s.submit(ctx, &request{kind: opAnnotations, updates: updates})
}

// RemoveAnnotations submits an annotation-removal batch (the engine's
// Case 3 in reverse) and waits for it to be applied. Entries whose
// annotation is absent are skipped, not errors.
func (s *Server) RemoveAnnotations(ctx context.Context, updates []relation.AnnotationUpdate) (*incremental.Report, error) {
	if err := s.validateUpdates(updates); err != nil {
		return nil, err
	}
	return s.submit(ctx, &request{kind: opRemovals, updates: updates})
}

// AddTuples submits a tuple batch and waits for it to be applied. The
// writer routes the coalesced group through the paper's Case 1 path when
// any tuple carries annotations and the cheaper Case 2 path when none do.
func (s *Server) AddTuples(ctx context.Context, tuples []relation.Tuple) (*incremental.Report, error) {
	return s.submit(ctx, &request{kind: opTuples, tuples: tuples})
}

func (s *Server) validateUpdates(updates []relation.AnnotationUpdate) error {
	n := s.rel.Len()
	for i, u := range updates {
		if u.Index < 0 || u.Index >= n {
			return fmt.Errorf("serve: update %d: %w: %d (relation has %d tuples)", i, relation.ErrTupleIndex, u.Index, n)
		}
		if !u.Annotation.IsAnnotation() {
			return fmt.Errorf("serve: update %d: item %v is not an annotation", i, u.Annotation)
		}
	}
	return nil
}

func (s *Server) submit(ctx context.Context, req *request) (*incremental.Report, error) {
	if req.size() == 0 {
		// Nothing to apply; answer without waking the writer, with the
		// same Case the engine would stamp on an empty batch of this kind.
		return &incremental.Report{Case: req.kind.reportCase()}, nil
	}
	req.done = make(chan result, 1)
	req.enqueued = time.Now()
	select {
	case <-s.quit:
		return nil, ErrClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	case s.reqs <- req:
	default:
		// Queue full. The writer drains a full queue in about one collect
		// pass, so wait at most one batch window for a slot; a queue still
		// full after that is saturation, not a momentary burst — shed the
		// request instead of queueing into ever-growing latency.
		if err := s.admit(ctx, req); err != nil {
			return nil, err
		}
	}
	s.requests.Add(1)
	select {
	case res := <-req.done:
		return res.rep, res.err
	case <-ctx.Done():
		// The update may still be applied by the writer; only the ack is
		// abandoned (req.done is buffered, so the writer never blocks).
		return nil, ctx.Err()
	case <-s.done:
		// Writer exited. A final drain may still have applied the request;
		// prefer its real result when available.
		select {
		case res := <-req.done:
			return res.rep, res.err
		default:
			return nil, ErrClosed
		}
	}
}

// admit waits up to one batch window for a queue slot, then sheds with
// ErrOverloaded. Called by submit only after a non-blocking send failed.
func (s *Server) admit(ctx context.Context, req *request) error {
	window := s.cfg.batchWindow()
	if window <= 0 {
		s.shed.Add(1)
		return ErrOverloaded
	}
	deadline := time.NewTimer(window)
	defer deadline.Stop()
	select {
	case <-s.quit:
		return ErrClosed
	case <-ctx.Done():
		return ctx.Err()
	case s.reqs <- req:
		return nil
	case <-deadline.C:
		s.shed.Add(1)
		return ErrOverloaded
	}
}

// --- writer loop ---------------------------------------------------------

func (s *Server) run() {
	go s.ackLoop()
	defer func() {
		// Every admitted request has been applied (drain ran) and its ack
		// handed off; let the acker deliver the tail before s.done declares
		// the server fully drained.
		close(s.acks)
		<-s.ackDone
		close(s.done)
	}()
	for {
		select {
		case req := <-s.reqs:
			s.apply(s.collect(req))
		case <-s.quit:
			s.drain()
			return
		}
	}
}

// ackLoop delivers deferred acknowledgements in batch order once each
// batch's group-commit fsync ticket resolves. Running it off the writer
// goroutine is what pipelines the commit: the writer starts collecting and
// applying batch n+1 while batch n waits for its covering fsync here.
func (s *Server) ackLoop() {
	defer close(s.ackDone)
	for p := range s.acks {
		err := <-p.ticket
		s.lat.Fsync.Observe(time.Since(p.sealed))
		if err != nil {
			s.journalErrs.Add(1)
			err = fmt.Errorf("%w: %w", ErrJournal, err)
		}
		s.deliver(p, err)
	}
}

// deliver acknowledges every waiter of one batch. A sync failure overrides
// the per-group results: the batch was applied and published, but its
// records never became durable, so acking success would break the
// acknowledged-implies-recoverable contract.
func (s *Server) deliver(p pendingAck, syncErr error) {
	for gi, group := range p.groups {
		res := p.results[gi]
		if syncErr != nil && res.err == nil {
			res = result{err: syncErr}
		}
		for _, r := range group {
			r.done <- res
		}
	}
}

// collect coalesces requests around first: everything already queued is
// absorbed immediately, then the writer lingers for the batch window (if
// any) to absorb stragglers, up to MaxBatch updates.
func (s *Server) collect(first *request) []*request {
	batch := []*request{first}
	size := first.size()
	max := s.cfg.maxBatch()
	for size < max {
		select {
		case r := <-s.reqs:
			batch = append(batch, r)
			size += r.size()
			continue
		default:
		}
		break
	}
	window := s.cfg.batchWindow()
	if window <= 0 || size >= max {
		return batch
	}
	deadline := time.NewTimer(window)
	defer deadline.Stop()
	for size < max {
		select {
		case r := <-s.reqs:
			batch = append(batch, r)
			size += r.size()
		case <-deadline.C:
			return batch
		case <-s.quit:
			return batch
		}
	}
	return batch
}

// drain applies every request still queued at shutdown.
func (s *Server) drain() {
	for {
		select {
		case req := <-s.reqs:
			s.apply(s.collect(req))
		default:
			return
		}
	}
}

// apply groups a coalesced batch into runs of like-kind requests (order
// preserved) and applies each run as one engine call. The fresh snapshot is
// published before any waiter is answered: an acknowledged write is
// guaranteed visible to the writer's next snapshot read (read-your-writes).
func (s *Server) apply(batch []*request) {
	now := time.Now()
	for _, r := range batch {
		s.lat.Queue.Observe(now.Sub(r.enqueued))
	}
	results := make([]result, 0, len(batch))
	groups := make([][]*request, 0, len(batch))
	for i := 0; i < len(batch); {
		j := i + 1
		for j < len(batch) && batch[j].kind == batch[i].kind {
			j++
		}
		group := batch[i:j]
		groups = append(groups, group)
		applyStart := time.Now()
		results = append(results, s.applyGroup(batch[i].kind, group))
		s.lat.Apply.Observe(time.Since(applyStart))
		i = j
	}
	pubStart := time.Now()
	s.publish()
	s.lat.Publish.Observe(time.Since(pubStart))
	// Acknowledge. A group-committing journal returns a seal ticket: the
	// batch's acks then wait (on the acker goroutine) for the covering
	// fsync while this writer moves on to the next batch — the pipeline
	// that lets one fsync cover every batch applied while the previous
	// fsync was in flight. A nil ticket means the appends are already as
	// durable as the policy promises: ack inline, exactly as before.
	var ticket <-chan error
	if gj, ok := s.cfg.Journal.(GroupJournal); ok {
		ticket = gj.Seal()
	}
	if ticket == nil {
		s.deliver(pendingAck{groups: groups, results: results}, nil)
	} else {
		p := pendingAck{groups: groups, results: results, ticket: ticket, sealed: time.Now()}
		select {
		case err := <-p.ticket:
			// Already resolved (the committer was idle and synced at once):
			// skip the acker hop.
			s.lat.Fsync.Observe(time.Since(p.sealed))
			if err != nil {
				s.journalErrs.Add(1)
				err = fmt.Errorf("%w: %w", ErrJournal, err)
			}
			s.deliver(p, err)
		default:
			s.acks <- p
		}
	}
	// After the acks are handed off: Committed may trigger a checkpoint (a
	// full state serialize + fsync), and waiters whose records are already
	// in the log should not sit through it.
	if s.cfg.Journal != nil {
		if err := s.cfg.Journal.Committed(); err != nil {
			s.journalErrs.Add(1)
			s.commitErr.Store(&err)
		} else {
			s.commitErr.Store(nil)
		}
	}
}

func (s *Server) applyGroup(kind opKind, group []*request) result {
	s.batches.Add(1)
	if len(group) > 1 {
		s.coalesced.Add(uint64(len(group)))
	}
	var (
		rep *incremental.Report
		err error
	)
	switch kind {
	case opAnnotations, opRemovals:
		var updates []relation.AnnotationUpdate
		if len(group) == 1 {
			updates = group[0].updates
		} else {
			for _, r := range group {
				updates = append(updates, r.updates...)
			}
		}
		if s.cfg.Journal != nil {
			if jerr := s.cfg.Journal.LogAnnotations(updates, kind == opRemovals); jerr != nil {
				s.journalErrs.Add(1)
				return result{err: fmt.Errorf("%w: %w", ErrJournal, jerr)}
			}
		}
		if kind == opAnnotations {
			rep, err = s.eng.AddAnnotations(updates)
		} else {
			rep, err = s.eng.RemoveAnnotations(updates)
		}
	case opTuples:
		var tuples []relation.Tuple
		if len(group) == 1 {
			tuples = group[0].tuples
		} else {
			for _, r := range group {
				tuples = append(tuples, r.tuples...)
			}
		}
		if s.cfg.Journal != nil {
			if jerr := s.cfg.Journal.LogTuples(tuples); jerr != nil {
				s.journalErrs.Add(1)
				return result{err: fmt.Errorf("%w: %w", ErrJournal, jerr)}
			}
		}
		annotated := false
		for _, tu := range tuples {
			if tu.Annotated() {
				annotated = true
				break
			}
		}
		if annotated {
			rep, err = s.eng.AddAnnotatedTuples(tuples)
		} else {
			rep, err = s.eng.AddUnannotatedTuples(tuples)
		}
	}
	return result{rep: rep, err: err}
}

// publish captures the engine state (one lock acquisition) and swaps in a
// new immutable snapshot. The engine snapshot pins the relation generation
// alongside the rule view, so View and Rules always pair; the relation's
// copy-on-write store makes the capture O(1) and charges the next batch
// only for the chunks it actually touches.
func (s *Server) publish() {
	es := s.eng.Snapshot()
	attachments, distinct := 0, 0
	for _, n := range es.Relation.FrequencyTable() {
		if n > 0 {
			attachments += n
			distinct++
		}
	}
	prev := s.snap.Load()
	snap := &Snapshot{
		Seq:                 s.seq.Add(1),
		N:                   es.N,
		MinCount:            es.MinCount,
		RelVersion:          es.RelVersion,
		EngineStats:         es.Stats,
		View:                es.Relation,
		Rules:               es.Rules,
		Candidates:          es.Candidates,
		Compiled:            predict.Compile(es.Rules, s.cfg.Recommend),
		Attachments:         attachments,
		DistinctAnnotations: distinct,
		Correlate:           &correlate.Lazy{},
	}
	s.snap.Store(snap)
	if s.cfg.Stream != nil && prev != nil {
		// The initial publish (prev == nil) is the diff baseline, not churn.
		s.cfg.Stream.Publish(snap.Seq,
			stream.TierViews{Valid: prev.Rules, Candidates: prev.Candidates},
			stream.TierViews{Valid: snap.Rules, Candidates: snap.Candidates})
	}
}
