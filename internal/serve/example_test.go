package serve_test

import (
	"context"
	"fmt"
	"time"

	"annotadb/internal/incremental"
	"annotadb/internal/mining"
	"annotadb/internal/relation"
	"annotadb/internal/serve"
)

// Example wraps an incremental engine in the serving core: readers work on
// the atomically published snapshot, a write republishes it, and the
// acknowledged write is immediately visible (read-your-writes).
func Example() {
	rel := relation.FromTokens(
		[][]string{
			{"28", "85"}, {"28", "85"}, {"28", "85"}, {"28", "85"}, {"28", "41"},
		},
		[][]string{
			{"Annot_1"}, {"Annot_1"}, {"Annot_1"}, nil, nil,
		},
	)
	eng, err := incremental.New(rel, mining.Config{MinSupport: 0.4, MinConfidence: 0.7, Parallelism: 1}, incremental.Options{})
	if err != nil {
		panic(err)
	}
	s := serve.New(eng, serve.Config{})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Close(ctx)
	}()

	before := s.Snapshot()
	fmt.Printf("snapshot %d: %d rules over %d tuples\n", before.Seq, before.Rules.Len(), before.N)

	// Attach Annot_1 to the fourth tuple (Case 3); the ack guarantees the
	// next snapshot read reflects it.
	a1, _ := rel.Dictionary().Lookup("Annot_1")
	if _, err := s.AddAnnotations(context.Background(), []relation.AnnotationUpdate{{Index: 3, Annotation: a1}}); err != nil {
		panic(err)
	}
	after := s.Snapshot()
	fmt.Printf("snapshot %d: %d rules over %d tuples\n", after.Seq, after.Rules.Len(), after.N)
	for _, r := range after.Rules.Sorted() {
		fmt.Println(r.Format(rel.Dictionary()))
	}
	// Output:
	// snapshot 1: 2 rules over 5 tuples
	// snapshot 2: 3 rules over 5 tuples
	// 28 -> Annot_1 (confidence: 0.8000, support: 0.8000)
	// 85 -> Annot_1 (confidence: 1.0000, support: 0.8000)
	// 28, 85 -> Annot_1 (confidence: 1.0000, support: 0.8000)
}
