package serve

import (
	"context"
	"testing"
	"time"

	"annotadb/internal/relation"
	"annotadb/internal/stream"
)

// TestWriterPublishesChurnEvents pins the serve-side streaming contract:
// the initial publish is a silent baseline, and every later publish diffs
// the outgoing and incoming tiers into events stamped with the new
// snapshot's Seq, appended before the write is acknowledged.
func TestWriterPublishesChurnEvents(t *testing.T) {
	rel := fixture()
	broker := stream.NewBroker(stream.Options{})
	defer broker.Close()
	pub := stream.NewPublisher(broker, 0, rel.Dictionary())
	s, _ := mustServer(t, rel, testCfg(), Config{BatchWindow: -1, Stream: pub})

	// The bootstrap publish must not have streamed the whole rule set.
	if st := broker.Stats(); st.Published != 0 {
		t.Fatalf("initial publish emitted %d events, want 0 (baseline)", st.Published)
	}

	ctx := context.Background()
	sub, err := broker.Subscribe(ctx, stream.SubscribeOptions{From: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Attach Annot_1 to tuple 5: {28,41} now supports 28⇒Annot_1 and
	// friends — confidence counts move, so churn must flow.
	dict := rel.Dictionary()
	a1, _ := dict.Lookup("Annot_1")
	rep, err := s.AddAnnotations(ctx, []relation.AnnotationUpdate{{Index: 5, Annotation: a1}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Promoted+rep.Demoted+rep.Discovered+rep.Dropped == 0 && broker.Stats().Published == 0 {
		t.Skip("fixture produced no churn; nothing to assert")
	}

	snap := s.Snapshot()
	if snap.Candidates == nil {
		t.Fatal("snapshot carries no candidate tier")
	}
	// The acknowledged write's events are already in the broker (publish
	// precedes the ack), stamped with the published snapshot's Seq.
	st := broker.Stats()
	if st.Published == 0 {
		t.Fatal("churn-producing batch emitted no events")
	}
	deadline := time.After(5 * time.Second)
	for i := uint64(0); i < st.Published; i++ {
		select {
		case ev := <-sub.Events:
			if ev.Seq != snap.Seq {
				t.Errorf("event %d stamped seq %d, want snapshot seq %d", i, ev.Seq, snap.Seq)
			}
			if ev.RHS == "" || !stream.ValidKind(ev.Kind) {
				t.Errorf("malformed event: %+v", ev)
			}
		case <-deadline:
			t.Fatalf("timed out at event %d of %d", i, st.Published)
		}
	}
}
