package serve

import (
	"testing"

	"annotadb/internal/predict"
	"annotadb/internal/relation"
)

// limitFixture yields exactly three recommendations for tuple 8: v1 implies
// Annot_a, Annot_b, and Annot_c at confidence 0.8 and support 0.8, and
// tuples 8 and 9 carry v1 with no annotations.
func limitFixture() *relation.Relation {
	rows := make([][]string, 0, 10)
	annots := make([][]string, 0, 10)
	for i := 0; i < 8; i++ {
		rows = append(rows, []string{"v1"})
		annots = append(annots, []string{"Annot_a", "Annot_b", "Annot_c"})
	}
	rows = append(rows, []string{"v1"}, []string{"v1"})
	annots = append(annots, nil, nil)
	return relation.FromTokens(rows, annots)
}

// TestRecommendLimitEdgeCases pins the serving core's Limit contract at its
// edges: zero and negative limits are unbounded, a limit beyond the result
// set returns everything, and a binding limit returns the deterministic
// prefix of the unbounded order.
func TestRecommendLimitEdgeCases(t *testing.T) {
	t.Parallel()
	baselineSrv, _ := mustServer(t, limitFixture(), testCfg(), Config{BatchWindow: -1})
	baseline, _, err := baselineSrv.Recommend(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(baseline) != 3 {
		t.Fatalf("unbounded baseline has %d recommendations, want 3", len(baseline))
	}
	cases := []struct {
		name  string
		limit int
		want  int
	}{
		{"zero is unbounded", 0, 3},
		{"negative is unbounded", -5, 3},
		{"beyond the result set", 100, 3},
		{"binding", 2, 2},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			s, _ := mustServer(t, limitFixture(), testCfg(), Config{
				BatchWindow: -1,
				Recommend:   predict.Options{Limit: tc.limit},
			})
			recs, _, err := s.Recommend(8)
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != tc.want {
				t.Fatalf("Limit %d returned %d recommendations, want %d", tc.limit, len(recs), tc.want)
			}
			// A binding limit keeps the prefix of the unbounded order.
			for i, r := range recs {
				if r.Annotation != baseline[i].Annotation {
					t.Errorf("recommendation %d = %v, want baseline prefix %v", i, r.Annotation, baseline[i].Annotation)
				}
			}
			// The incoming-tuple path obeys the same limit.
			tu, err := s.Snapshot().View.Tuple(8)
			if err != nil {
				t.Fatal(err)
			}
			if got := len(s.RecommendIncoming(tu)); got != tc.want {
				t.Errorf("RecommendIncoming with Limit %d returned %d, want %d", tc.limit, got, tc.want)
			}
		})
	}
}
