package serve

import (
	"context"
	"strconv"
	"sync"
	"testing"
	"time"

	"annotadb/internal/mining"
	"annotadb/internal/relation"
	"annotadb/internal/rules"
)

// TestGenerationConsistencyUnderHammer is the regression test for the torn
// read this package used to permit: Recommend read the tuple live from the
// relation while evaluating rules from an older published snapshot, so a
// reader could observe a tuple annotated (or stripped) AFTER the rules it
// was scored against.
//
// Construction: 8 tuples all carrying data value d; Annot_X is attached to
// tuples 0..6 permanently and toggled on tuple 7 by a hammering writer. At
// minSupport = minConfidence = 0.95 over N = 8, the rule d ⇒ Annot_X is
// valid exactly when all 8 tuples carry Annot_X (8/8 = 1.0 ≥ 0.95; 7/8 =
// 0.875 < 0.95). Therefore, in any single published generation:
//
//   - the rule exists  ⇔  tuple 7 carries Annot_X  ⇔  Recommend(7) has
//     nothing to recommend (the annotation is already present);
//   - the rule is absent ⇒ Recommend(7) has nothing to recommend either.
//
// So a recommendation of Annot_X for tuple 7 is impossible in a consistent
// generation — it can only arise from pairing the rule set of one
// generation with tuple contents of another. Under the pre-view live-read
// path this fired readily (live tuple just stripped + snapshot rules still
// holding the rule); against the published-view path it must never fire.
func TestGenerationConsistencyUnderHammer(t *testing.T) {
	rel := relation.New()
	dict := rel.Dictionary()
	x := relation.MustAnnotation(dict, "Annot_X")
	for i := 0; i < 8; i++ {
		rel.Append(relation.MustTuple(dict, []string{"d"}, []string{"Annot_X"}))
	}
	mcfg := mining.Config{MinSupport: 0.95, MinConfidence: 0.95, Parallelism: 1}
	s, eng := mustServer(t, rel, mcfg, Config{BatchWindow: -1})
	if s.Snapshot().Rules.Len() == 0 {
		t.Fatal("fixture mined no rules; the consistency property would be vacuous")
	}

	const toggles = 4000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan string, 8)
	report := func(msg string) {
		select {
		case errs <- msg:
		default:
		}
	}
	wg.Add(1)
	go func() { // hammering annotator: strip and re-attach Annot_X on tuple 7
		defer wg.Done()
		defer close(stop)
		ctx := context.Background()
		for i := 0; i < toggles; i++ {
			if _, err := s.RemoveAnnotations(ctx, []relation.AnnotationUpdate{{Index: 7, Annotation: x}}); err != nil {
				report("remove: " + err.Error())
				return
			}
			if _, err := s.AddAnnotations(ctx, []relation.AnnotationUpdate{{Index: 7, Annotation: x}}); err != nil {
				report("add: " + err.Error())
				return
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// The serving API: tuple and rules must pair.
				recs, seq, err := s.Recommend(7)
				if err != nil {
					report("recommend: " + err.Error())
					return
				}
				for _, rec := range recs {
					if rec.Annotation == x {
						report("torn read: Recommend proposed Annot_X for tuple 7 " +
							"(rule set and tuple contents came from different generations), seq " +
							strconv.FormatUint(seq, 10))
						return
					}
				}
				// The snapshot itself: the rule d⇒X exists iff this
				// generation's tuple 7 carries X.
				snap := s.Snapshot()
				tu, err := snap.View.Tuple(7)
				if err != nil {
					report("snapshot tuple: " + err.Error())
					return
				}
				hasAnnot := tu.HasAnnotation(x)
				hasRule := false
				snap.Rules.EachRule(func(rl rules.Rule) bool {
					if rl.RHS == x {
						hasRule = true
						return false
					}
					return true
				})
				if hasRule != hasAnnot {
					report("torn snapshot: rule presence and tuple contents disagree within one Seq")
					return
				}
				if snap.RelVersion != snap.View.Version() {
					report("snapshot RelVersion does not match its own view's version")
					return
				}
			}
		}()
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("consistency hammer timed out")
	}
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
	if err := eng.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestRecommendServesPublishedGenerationOnly pins the structural property
// behind the lock-free read contract: Recommend answers entirely from the
// published snapshot's pinned view. Even when the live relation is ahead of
// the snapshot — exactly the state between a batch apply and its publish —
// the served tuple contents come from the published generation, not the
// live store.
func TestRecommendServesPublishedGenerationOnly(t *testing.T) {
	rel := fixture()
	s, _ := mustServer(t, rel, testCfg(), Config{BatchWindow: -1})

	a1 := relation.MustAnnotation(rel.Dictionary(), "Annot_1")
	before := s.Snapshot()
	// Mutate the relation directly (bypassing the server) so the live
	// relation is newer than the published snapshot. This is exactly the
	// state between a batch apply and its publish.
	if err := rel.AddAnnotation(5, a1); err != nil {
		t.Fatal(err)
	}
	recs, seq, err := s.Recommend(5)
	if err != nil {
		t.Fatal(err)
	}
	if seq != before.Seq {
		t.Fatalf("Recommend served from seq %d, want the published %d", seq, before.Seq)
	}
	// The snapshot's view must not see the unpublished live mutation.
	tu, err := before.View.Tuple(5)
	if err != nil {
		t.Fatal(err)
	}
	if tu.HasAnnotation(a1) {
		t.Fatal("published view observed an unpublished live mutation")
	}
	// Recommendations were computed against that stale-but-consistent
	// generation, where tuple 5 does not carry Annot_1 yet — so the strong
	// {28,85}⇒Annot_1 family may legitimately propose it; with a live read
	// the already-attached annotation would have been suppressed.
	_ = recs
	if rel.Version() == before.RelVersion {
		t.Fatal("test did not actually advance the live relation")
	}
}
