package serve

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"annotadb/internal/incremental"
	"annotadb/internal/itemset"
	"annotadb/internal/mining"
	"annotadb/internal/predict"
	"annotadb/internal/relation"
	"annotadb/internal/rules"
)

func testCfg() mining.Config {
	return mining.Config{MinSupport: 0.3, MinConfidence: 0.7, Parallelism: 1}
}

// fixture: the incremental package's 10-tuple world — {28,85}⇒Annot_1
// strong, Annot_5⇒Annot_1 moderate.
func fixture() *relation.Relation {
	return relation.FromTokens(
		[][]string{
			{"28", "85", "99"},
			{"28", "85", "12"},
			{"28", "85", "40"},
			{"28", "85", "41"},
			{"28", "85"},
			{"28", "41"},
			{"41", "85"},
			{"62", "12"},
			{"62", "40"},
			{"99", "12"},
		},
		[][]string{
			{"Annot_1", "Annot_5"},
			{"Annot_1", "Annot_5"},
			{"Annot_1", "Annot_5"},
			{"Annot_1"},
			{"Annot_1"},
			nil,
			{"Annot_5"},
			nil,
			nil,
			nil,
		},
	)
}

func mustServer(t *testing.T, rel *relation.Relation, mcfg mining.Config, cfg Config) (*Server, *incremental.Engine) {
	t.Helper()
	eng, err := incremental.New(rel, mcfg, incremental.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(eng, cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return s, eng
}

func TestInitialSnapshotMatchesEngine(t *testing.T) {
	rel := fixture()
	s, eng := mustServer(t, rel, testCfg(), Config{})
	snap := s.Snapshot()
	if snap == nil {
		t.Fatal("nil initial snapshot")
	}
	if snap.Seq != 1 {
		t.Errorf("initial Seq = %d, want 1", snap.Seq)
	}
	if snap.N != rel.Len() {
		t.Errorf("snapshot N = %d, want %d", snap.N, rel.Len())
	}
	if diff := rules.Diff(snap.Rules.Thaw(), eng.Rules(), rel.Dictionary()); len(diff) != 0 {
		t.Fatalf("initial snapshot diverges from engine: %v", diff)
	}
	if len(s.Rules()) != snap.Rules.Len() {
		t.Errorf("Rules() returned %d rules, view has %d", len(s.Rules()), snap.Rules.Len())
	}
}

func TestAddAnnotationsRefreshesSnapshot(t *testing.T) {
	rel := fixture()
	dict := rel.Dictionary()
	s, eng := mustServer(t, rel, testCfg(), Config{BatchWindow: -1})
	before := s.Snapshot()

	a1 := relation.MustAnnotation(dict, "Annot_1")
	rep, err := s.AddAnnotations(context.Background(), []relation.AnnotationUpdate{
		{Index: 5, Annotation: a1},
		{Index: 7, Annotation: a1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Applied != 2 {
		t.Errorf("Applied = %d, want 2", rep.Applied)
	}
	after := s.Snapshot()
	if after.Seq <= before.Seq {
		t.Errorf("snapshot Seq did not advance: %d -> %d", before.Seq, after.Seq)
	}
	if after.RelVersion <= before.RelVersion {
		t.Errorf("snapshot RelVersion did not advance: %d -> %d", before.RelVersion, after.RelVersion)
	}
	if diff := rules.Diff(after.Rules.Thaw(), eng.Rules(), dict); len(diff) != 0 {
		t.Fatalf("snapshot diverges from engine after update: %v", diff)
	}
	if err := eng.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestAddTuplesRoutesCases(t *testing.T) {
	rel := fixture()
	dict := rel.Dictionary()
	s, _ := mustServer(t, rel, testCfg(), Config{BatchWindow: -1})
	ctx := context.Background()

	// Pure data batch takes the Case 2 path.
	rep, err := s.AddTuples(ctx, []relation.Tuple{relation.MustTuple(dict, []string{"28", "85"}, nil)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Case != incremental.CaseUnannotatedTuples {
		t.Errorf("unannotated batch ran %v, want Case 2", rep.Case)
	}

	// A batch with any annotated tuple takes the Case 1 path.
	rep, err = s.AddTuples(ctx, []relation.Tuple{
		relation.MustTuple(dict, []string{"62"}, nil),
		relation.MustTuple(dict, []string{"28", "85"}, []string{"Annot_1"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Case != incremental.CaseAnnotatedTuples {
		t.Errorf("annotated batch ran %v, want Case 1", rep.Case)
	}
	if got := s.Snapshot().N; got != 13 {
		t.Errorf("snapshot N = %d, want 13", got)
	}
}

func TestRemoveAnnotations(t *testing.T) {
	rel := fixture()
	dict := rel.Dictionary()
	s, eng := mustServer(t, rel, testCfg(), Config{BatchWindow: -1})
	a5 := relation.MustAnnotation(dict, "Annot_5")
	rep, err := s.RemoveAnnotations(context.Background(), []relation.AnnotationUpdate{
		{Index: 0, Annotation: a5},
		{Index: 9, Annotation: a5}, // absent: skipped, not an error
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Applied != 1 || rep.Skipped != 1 {
		t.Errorf("Applied/Skipped = %d/%d, want 1/1", rep.Applied, rep.Skipped)
	}
	if err := eng.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRecommend(t *testing.T) {
	rel := fixture()
	dict := rel.Dictionary()
	s, _ := mustServer(t, rel, testCfg(), Config{})
	// Tuple 5 is {28,41} with no annotations; no {28}-only rule exists at
	// these thresholds, so pick tuple 6 {41,85}+Annot_5: the Annot_5⇒Annot_1
	// family may or may not be valid — assert against a compiled scan
	// instead of hardcoding, then spot-check one known case.
	snap := s.Snapshot()
	want := snap.Compiled.ScanRange(rel, 0, rel.Len())
	byTuple := make(map[int][]predict.Recommendation)
	for _, r := range want {
		byTuple[r.TupleIndex] = append(byTuple[r.TupleIndex], r)
	}
	for idx, wantRecs := range byTuple {
		got, _, err := s.Recommend(idx)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(wantRecs) {
			t.Fatalf("tuple %d: Recommend returned %d recs, scan found %d", idx, len(got), len(wantRecs))
		}
		for i := range got {
			if got[i].Annotation != wantRecs[i].Annotation || got[i].TupleIndex != idx {
				t.Fatalf("tuple %d: rec %d = %+v, want %+v", idx, i, got[i], wantRecs[i])
			}
		}
	}

	// Incoming-tuple trigger: {28,85} with no annotations must draw the
	// strong {28,85}⇒Annot_1 recommendation.
	tu := relation.MustTuple(dict, []string{"28", "85"}, nil)
	recs := s.RecommendIncoming(tu)
	found := false
	for _, r := range recs {
		if dict.Token(r.Annotation) == "Annot_1" {
			found = true
		}
	}
	if !found {
		t.Errorf("incoming {28,85} did not draw Annot_1: %v", recs)
	}

	if _, _, err := s.Recommend(10_000); err == nil {
		t.Error("Recommend with out-of-range index did not fail")
	}
}

func TestValidationRejectsBadUpdates(t *testing.T) {
	rel := fixture()
	dict := rel.Dictionary()
	s, _ := mustServer(t, rel, testCfg(), Config{BatchWindow: -1})
	ctx := context.Background()
	a1 := relation.MustAnnotation(dict, "Annot_1")

	if _, err := s.AddAnnotations(ctx, []relation.AnnotationUpdate{{Index: 99, Annotation: a1}}); !errors.Is(err, relation.ErrTupleIndex) {
		t.Errorf("out-of-range index: err = %v, want ErrTupleIndex", err)
	}
	d := relation.MustData(dict, "28")
	if _, err := s.AddAnnotations(ctx, []relation.AnnotationUpdate{{Index: 0, Annotation: d}}); err == nil {
		t.Error("data item accepted as annotation")
	}
	// Empty batches are answered without waking the writer.
	rep, err := s.AddAnnotations(ctx, nil)
	if err != nil || rep.Applied != 0 {
		t.Errorf("empty batch: rep=%+v err=%v", rep, err)
	}
	if got := s.Stats().Requests; got != 0 {
		t.Errorf("rejected/empty batches counted as requests: %d", got)
	}
}

func TestCloseSemantics(t *testing.T) {
	rel := fixture()
	dict := rel.Dictionary()
	eng, err := incremental.New(rel, testCfg(), incremental.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(eng, Config{BatchWindow: -1})
	ctx := context.Background()
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(ctx); err != nil { // idempotent
		t.Fatal(err)
	}
	a1 := relation.MustAnnotation(dict, "Annot_1")
	if _, err := s.AddAnnotations(ctx, []relation.AnnotationUpdate{{Index: 5, Annotation: a1}}); !errors.Is(err, ErrClosed) {
		t.Errorf("write after close: err = %v, want ErrClosed", err)
	}
	// Reads stay valid after close.
	if s.Snapshot() == nil || len(s.Rules()) == 0 {
		t.Error("reads broken after close")
	}
}

func TestCoalescingMergesConcurrentWrites(t *testing.T) {
	rel := fixture()
	dict := rel.Dictionary()
	// Long window: every request submitted below lands in one collect pass.
	s, eng := mustServer(t, rel, testCfg(), Config{BatchWindow: 500 * time.Millisecond})
	a1 := relation.MustAnnotation(dict, "Annot_1")

	const writers = 8
	targets := []int{5, 6, 7, 8, 9, 5, 6, 7} // overlaps exercise dup-skip
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, errs[w] = s.AddAnnotations(context.Background(), []relation.AnnotationUpdate{
				{Index: targets[w], Annotation: a1},
			})
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}
	st := s.Stats()
	if st.Requests != writers {
		t.Errorf("Requests = %d, want %d", st.Requests, writers)
	}
	if st.Batches >= writers {
		t.Errorf("Batches = %d: no coalescing happened across %d concurrent writes", st.Batches, writers)
	}
	// Every distinct target must now carry Annot_1.
	for _, idx := range []int{5, 6, 7, 8, 9} {
		tu, err := rel.Tuple(idx)
		if err != nil {
			t.Fatal(err)
		}
		if !tu.HasAnnotation(a1) {
			t.Errorf("tuple %d missing Annot_1 after coalesced batch", idx)
		}
	}
	if err := eng.Verify(); err != nil {
		t.Fatal(err)
	}
}

// buildWorld creates a deterministic pseudo-random relation with planted
// correlations so the thresholds used by the stress test and benchmarks
// yield a living rule set: tuples carrying data {1,2} almost always carry
// Annot_A, and Annot_B almost always co-occurs with Annot_C.
func buildWorld(seed int64, tuples int) (*relation.Relation, []itemset.Item) {
	rng := rand.New(rand.NewSource(seed))
	rel := relation.New()
	dict := rel.Dictionary()
	annots := make([]itemset.Item, 5)
	for i := range annots {
		annots[i] = relation.MustAnnotation(dict, "Annot_"+string(rune('A'+i)))
	}
	batch := make([]relation.Tuple, 0, tuples)
	for i := 0; i < tuples; i++ {
		batch = append(batch, randomTuple(rng, annots))
	}
	rel.Append(batch...)
	return rel, annots
}

func randomTuple(rng *rand.Rand, annots []itemset.Item) relation.Tuple {
	var items []itemset.Item
	if rng.Intn(2) == 0 {
		// Planted pattern: {1,2} ⇒ Annot_A (conf ≈ 0.9), with Annot_B and
		// Annot_C riding along often enough for an A2A family.
		items = append(items, itemset.DataItem(1), itemset.DataItem(2))
		if rng.Intn(10) != 0 {
			items = append(items, annots[0])
		}
		if rng.Intn(2) == 0 {
			items = append(items, annots[1])
			if rng.Intn(10) != 0 {
				items = append(items, annots[2])
			}
		}
	} else {
		for v := 0; v < 1+rng.Intn(4); v++ {
			items = append(items, itemset.DataItem(3+rng.Intn(6)))
		}
		for _, a := range annots[3:] {
			if rng.Intn(3) == 0 {
				items = append(items, a)
			}
		}
	}
	return relation.NewTuple(items...)
}

// TestStressReadersSeeConsistentSnapshots is the acceptance stress test:
// many concurrent readers against one logical writer stream, under -race.
// Every snapshot a reader observes must be internally consistent — every
// rule's N equals the snapshot's N, counts are ordered, every rule meets
// the thresholds (the valid-set invariant Engine.Verify enforces), and
// sequence numbers never go backwards. After quiescence the final snapshot
// must equal a from-scratch re-mine.
func TestStressReadersSeeConsistentSnapshots(t *testing.T) {
	mcfg := mining.Config{MinSupport: 0.2, MinConfidence: 0.6, Parallelism: 1}
	rel, annots := buildWorld(7, 150)
	baseLen := rel.Len()
	s, eng := mustServer(t, rel, mcfg, Config{BatchWindow: 200 * time.Microsecond})
	if s.Snapshot().Rules.Len() == 0 {
		t.Fatal("stress world mined no rules; the consistency assertions would be vacuous")
	}

	const (
		readers       = 8
		writers       = 3
		writesPerGoro = 40
	)
	var stop atomic.Bool
	var readersWg, writersWg sync.WaitGroup
	readErrs := make(chan string, readers)

	for r := 0; r < readers; r++ {
		readersWg.Add(1)
		go func(r int) {
			defer readersWg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + r)))
			var lastSeq uint64
			for !stop.Load() {
				snap := s.Snapshot()
				if snap.Seq < lastSeq {
					readErrs <- "snapshot sequence went backwards"
					return
				}
				lastSeq = snap.Seq
				for _, rule := range snap.Rules.Sorted() {
					if rule.N != snap.N {
						readErrs <- "rule N diverges from snapshot N: torn snapshot"
						return
					}
					if rule.PatternCount < 0 || rule.PatternCount > rule.LHSCount || rule.LHSCount > rule.N {
						readErrs <- "rule counts out of order: torn rule"
						return
					}
					if !rule.Meets(mcfg.MinSupport, mcfg.MinConfidence) {
						readErrs <- "invalid rule in published snapshot"
						return
					}
				}
				// Exercise the read API under write load.
				if _, _, err := s.Recommend(rng.Intn(baseLen)); err != nil {
					readErrs <- "recommend failed: " + err.Error()
					return
				}
			}
		}(r)
	}

	for w := 0; w < writers; w++ {
		writersWg.Add(1)
		go func(w int) {
			defer writersWg.Done()
			rng := rand.New(rand.NewSource(int64(2000 + w)))
			ctx := context.Background()
			for i := 0; i < writesPerGoro; i++ {
				switch rng.Intn(4) {
				case 0:
					batch := []relation.Tuple{randomTuple(rng, annots), randomTuple(rng, annots)}
					if _, err := s.AddTuples(ctx, batch); err != nil {
						t.Errorf("writer %d AddTuples: %v", w, err)
						return
					}
				case 1:
					var batch []relation.AnnotationUpdate
					for k := 0; k < 1+rng.Intn(4); k++ {
						batch = append(batch, relation.AnnotationUpdate{
							Index:      rng.Intn(baseLen),
							Annotation: annots[rng.Intn(len(annots))],
						})
					}
					if _, err := s.RemoveAnnotations(ctx, batch); err != nil {
						t.Errorf("writer %d RemoveAnnotations: %v", w, err)
						return
					}
				default:
					var batch []relation.AnnotationUpdate
					for k := 0; k < 1+rng.Intn(4); k++ {
						batch = append(batch, relation.AnnotationUpdate{
							Index:      rng.Intn(baseLen),
							Annotation: annots[rng.Intn(len(annots))],
						})
					}
					if _, err := s.AddAnnotations(ctx, batch); err != nil {
						t.Errorf("writer %d AddAnnotations: %v", w, err)
						return
					}
				}
			}
		}(w)
	}

	// Readers run until every writer's last batch has been acknowledged.
	deadline := time.After(2 * time.Minute)
	writersDone := make(chan struct{})
	go func() {
		writersWg.Wait()
		close(writersDone)
	}()
	select {
	case <-writersDone:
	case <-deadline:
		t.Fatal("stress writers timed out")
	}
	stop.Store(true)
	readersDone := make(chan struct{})
	go func() {
		readersWg.Wait()
		close(readersDone)
	}()
	select {
	case <-readersDone:
	case <-deadline:
		t.Fatal("stress readers did not exit")
	}
	close(readErrs)
	for msg := range readErrs {
		t.Error(msg)
	}

	// Quiesce and verify exactness: published snapshot == engine == re-mine.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := eng.Verify(); err != nil {
		t.Fatalf("engine diverged from re-mine after stress: %v", err)
	}
	final := s.Snapshot()
	if diff := rules.Diff(final.Rules.Thaw(), eng.Rules(), rel.Dictionary()); len(diff) != 0 {
		t.Fatalf("final snapshot diverges from engine: %v", diff)
	}
	st := s.Stats()
	if st.Requests != uint64(writers*writesPerGoro) {
		t.Errorf("Requests = %d, want %d", st.Requests, writers*writesPerGoro)
	}
	if st.Batches == 0 || st.Seq < 2 {
		t.Errorf("suspicious stats after stress: %+v", st)
	}
	t.Logf("stress: %d requests -> %d engine batches (%d coalesced), %d snapshots, %d reads",
		st.Requests, st.Batches, st.Coalesced, st.Seq, st.Reads)
}

// TestReadYourWrites pins the acknowledgment ordering: once a write call
// returns, the snapshot the same client reads next must already include it.
func TestReadYourWrites(t *testing.T) {
	rel := fixture()
	dict := rel.Dictionary()
	s, _ := mustServer(t, rel, testCfg(), Config{BatchWindow: -1})
	a1 := relation.MustAnnotation(dict, "Annot_1")
	ctx := context.Background()
	lastSeq := s.Snapshot().Seq
	lastVer := s.Snapshot().RelVersion
	for i := 0; i < 20; i++ {
		idx := 5 + i%5
		var (
			rep *incremental.Report
			err error
		)
		if i%2 == 0 {
			rep, err = s.AddAnnotations(ctx, []relation.AnnotationUpdate{{Index: idx, Annotation: a1}})
		} else {
			rep, err = s.RemoveAnnotations(ctx, []relation.AnnotationUpdate{{Index: idx, Annotation: a1}})
		}
		if err != nil {
			t.Fatal(err)
		}
		snap := s.Snapshot()
		if snap.Seq <= lastSeq {
			t.Fatalf("iteration %d: acked write preceded its snapshot publish: Seq %d -> %d", i, lastSeq, snap.Seq)
		}
		if rep.Applied > 0 && snap.RelVersion <= lastVer {
			t.Fatalf("iteration %d: applied write not visible: RelVersion %d -> %d", i, lastVer, snap.RelVersion)
		}
		lastSeq, lastVer = snap.Seq, snap.RelVersion
	}
}

func TestStatsReflectSnapshot(t *testing.T) {
	rel := fixture()
	s, _ := mustServer(t, rel, testCfg(), Config{BatchWindow: -1})
	st := s.Stats()
	if st.N != rel.Len() {
		t.Errorf("Stats N = %d, want %d", st.N, rel.Len())
	}
	if st.RuleCount != len(s.Rules()) {
		t.Errorf("Stats RuleCount = %d, want %d", st.RuleCount, len(s.Rules()))
	}
	if st.Engine.Bootstraps != 1 {
		t.Errorf("Stats Engine.Bootstraps = %d, want 1", st.Engine.Bootstraps)
	}
}

func TestEmptyBatchReportsRequestCase(t *testing.T) {
	rel := fixture()
	s, _ := mustServer(t, rel, testCfg(), Config{BatchWindow: -1})
	ctx := context.Background()
	rep, err := s.AddAnnotations(ctx, nil)
	if err != nil || rep.Case != incremental.CaseNewAnnotations {
		t.Errorf("empty annotation batch: case=%v err=%v, want Case 3", rep.Case, err)
	}
	rep, err = s.RemoveAnnotations(ctx, nil)
	if err != nil || rep.Case != incremental.CaseRemoveAnnotations {
		t.Errorf("empty removal batch: case=%v err=%v, want removal case", rep.Case, err)
	}
	rep, err = s.AddTuples(ctx, nil)
	if err != nil || rep.Case != incremental.CaseUnannotatedTuples {
		t.Errorf("empty tuple batch: case=%v err=%v, want Case 2", rep.Case, err)
	}
}
