// Package atomicmix implements the annotlint analyzer for mixed atomic and
// plain access: a field or variable that is touched through sync/atomic in
// one place must be touched through sync/atomic everywhere, because one
// plain read racing one atomic write is still a data race (this is exactly
// the torn-read bug the live serving path shipped with in PR 3).
//
// The check is per package: pass one collects every variable whose address
// is taken as the first argument of a sync/atomic call; pass two flags any
// other appearance of those variables that is not itself inside a
// sync/atomic call argument, excluding declarations, keyed composite
// literal fields (pre-publication construction), and &x unary expressions
// that feed other atomic calls.
package atomicmix

import (
	"go/ast"
	"go/types"

	"annotadb/internal/analysis"
)

// New builds the analyzer; it needs no configuration.
func New() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:       "atomicmix",
		Doc:        "flags variables accessed both through sync/atomic and plainly",
		NeedsTypes: true,
		Run:        run,
	}
}

// Default returns the analyzer (alias of New; atomicmix is not
// configurable).
func Default() *analysis.Analyzer { return New() }

func run(pass *analysis.Pass) error {
	atomicVars := map[*types.Var]bool{}
	// Idents appearing inside a sync/atomic call's arguments; these are the
	// sanctioned accesses.
	sanctioned := map[*ast.Ident]bool{}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(an ast.Node) bool {
					if id, ok := an.(*ast.Ident); ok {
						sanctioned[id] = true
					}
					return true
				})
			}
			if len(call.Args) == 0 {
				return true
			}
			if ue, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr); ok {
				if v := varOf(pass, ue.X); v != nil {
					atomicVars[v] = true
				}
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return nil
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CompositeLit:
				// Keyed struct construction initializes the field before the
				// value is shared; skip the key idents.
				for _, el := range x.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							sanctioned[id] = true
						}
					}
				}
			case *ast.Ident:
				if sanctioned[x] {
					return true
				}
				v, ok := pass.Info.Uses[x].(*types.Var)
				if !ok || !atomicVars[v] {
					return true
				}
				pass.Reportf(x.Pos(), "%s is accessed with sync/atomic elsewhere; this plain access races with the atomic ones", v.Name())
			}
			return true
		})
	}
	return nil
}

// isAtomicCall reports whether call invokes a package-level sync/atomic
// function (atomic.AddUint64, atomic.LoadPointer, ...). Methods on the
// typed atomics (atomic.Uint64, atomic.Pointer[T]) are excluded: there the
// receiver is the atomically-accessed variable, and passing &x to, say,
// Pointer.Store merely stores a pointer value — it says nothing about how
// x itself is accessed.
func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.Callee(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	return sig != nil && sig.Recv() == nil
}

// varOf resolves an expression like x or s.f to the variable it names.
func varOf(pass *analysis.Pass, e ast.Expr) *types.Var {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, _ := pass.ObjectOf(x).(*types.Var)
		return v
	case *ast.SelectorExpr:
		v, _ := pass.ObjectOf(x.Sel).(*types.Var)
		return v
	}
	return nil
}
