// Package mix exercises the atomicmix analyzer with the torn-read shape
// the live serving path shipped with in PR 3: a counter written through
// sync/atomic in one method and read plainly in another.
package mix

import "sync/atomic"

// Stats is a counter block shared across goroutines.
type Stats struct {
	hits   uint64
	misses uint64
}

// NewStats constructs the block; keyed composite initialization happens
// before publication and is sanctioned.
func NewStats() *Stats {
	return &Stats{hits: 0, misses: 0}
}

// Hit records one hit atomically.
func (s *Stats) Hit() {
	atomic.AddUint64(&s.hits, 1)
}

// TornRead reads hits without atomic.LoadUint64 — PR 3's bug.
func (s *Stats) TornRead() uint64 {
	return s.hits // want `hits is accessed with sync/atomic elsewhere`
}

// CleanRead is the correct form.
func (s *Stats) CleanRead() uint64 {
	return atomic.LoadUint64(&s.hits)
}

// Miss touches misses only plainly; a consistently plain field is the
// caller's locking problem, not a mixed-discipline one.
func (s *Stats) Miss() {
	s.misses++
}

// MissCount reads the consistently plain field.
func (s *Stats) MissCount() uint64 {
	return s.misses
}

// lastErr is a typed atomic; storing &err says nothing about how err
// itself is accessed, so Record's plain uses of err must not be flagged.
var lastErr atomic.Pointer[error]

// Record stores the error pointer; err stays a plain local.
func Record(err error) {
	if err != nil {
		lastErr.Store(&err)
	}
	_ = err
}

// Reset carries the sanctioned exception: it runs before any reader
// goroutine starts, so the spawn orders the plain write. The suppression
// must keep working or this file stops matching its golden expectations.
func (s *Stats) Reset() {
	//annotlint:ignore atomicmix Reset runs before any reader goroutine starts; the goroutine spawn orders this write
	s.hits = 0
}
