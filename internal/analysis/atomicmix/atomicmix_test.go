package atomicmix_test

import (
	"testing"

	"annotadb/internal/analysis/analysistest"
	"annotadb/internal/analysis/atomicmix"
)

// TestAtomicMix runs the analyzer over the mix golden package: the
// plain-read-of-an-atomic-counter shape that was PR 3's torn-read bug, the
// typed-atomic pointer store that must NOT mark its operand (the false
// positive the serving layer would otherwise trip), keyed composite
// construction, and one suppressed-with-reason pre-publication reset.
func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), atomicmix.New(), "mix")
}
