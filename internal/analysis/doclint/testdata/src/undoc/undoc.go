package undoc // want `package undoc has no package comment`

import "strings"

// Documented carries a doc comment and is clean.
var Documented = 1

var Exported = []int{ // want `exported var Exported has no doc comment`
	1,
}

type Thing struct { // want `exported type Thing has no doc comment`
	n int
}

// Named is documented.
type Named struct{}

func MissingDoc() {} // want `exported function MissingDoc has no doc comment`

func (t *Thing) MissingMethodDoc() {} // want `exported method Thing.MissingMethodDoc has no doc comment`

// HasDoc is documented.
func HasDoc() string { return strings.TrimSpace(" ok ") }

type hidden struct{}

// Exported methods on unexported receivers are outside the package API.
func (h *hidden) Visible() {}

func unexported() {}

// use keeps the unexported declarations referenced.
func use() {
	_ = hidden{}
	_ = Thing{n: 1}
	unexported()
}

func Shim() {} //annotlint:ignore doclint generated build-tag shim, documented in the package comment of its source template
