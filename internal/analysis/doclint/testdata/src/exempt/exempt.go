package exempt

var Exported = 1

func Undocumented() {}
