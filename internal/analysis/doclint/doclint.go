// Package doclint implements the annotlint analyzer enforcing the
// repository's documentation contract (see ARCHITECTURE.md): every covered
// package carries a package comment, and every exported top-level
// declaration — functions, methods on exported receivers, types, constants,
// and variables — carries a doc comment. Grouped const/var/type blocks may
// carry one comment on the block instead of one per spec, and a trailing
// line comment on a spec also satisfies the contract.
//
// doclint began life as the internal/docs test and is now the fifth
// analyzer under the annotlint driver so documentation gaps surface in the
// same report, with the same suppression mechanism, as the concurrency and
// error-discipline findings. It is purely syntactic (NeedsTypes=false) and
// so also runs on packages that fail to type-check.
package doclint

import (
	"go/ast"
	"strings"

	"annotadb/internal/analysis"
)

// Config restricts which packages the analyzer lints.
type Config struct {
	// Exempt lists import-path prefixes to skip entirely. Covered packages
	// are everything else.
	Exempt []string
}

// Default returns the analyzer covering every package (no exemptions): the
// repository documents all of its code, commands included.
func Default() *analysis.Analyzer { return New(Config{}) }

// New builds the analyzer for an explicit configuration (used by tests).
func New(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "doclint",
		Doc:  "flags exported identifiers and packages lacking doc comments",
		Run: func(pass *analysis.Pass) error {
			for _, prefix := range cfg.Exempt {
				if pass.PkgPath == prefix || strings.HasPrefix(pass.PkgPath, prefix+"/") {
					return nil
				}
			}
			return run(pass)
		},
	}
}

func run(pass *analysis.Pass) error {
	hasPackageDoc := false
	for _, f := range pass.Files {
		if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
			hasPackageDoc = true
		}
		for _, decl := range f.Decls {
			lintDecl(pass, decl)
		}
	}
	if !hasPackageDoc && len(pass.Files) > 0 {
		pass.Reportf(pass.Files[0].Name.Pos(), "package %s has no package comment", pass.Files[0].Name.Name)
	}
	return nil
}

func lintDecl(pass *analysis.Pass, decl ast.Decl) {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !receiverExported(d) {
			return
		}
		if d.Doc == nil {
			pass.Reportf(d.Pos(), "exported %s %s has no doc comment", funcKind(d), funcName(d))
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch sp := spec.(type) {
			case *ast.TypeSpec:
				if sp.Name.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
					pass.Reportf(sp.Pos(), "exported type %s has no doc comment", sp.Name.Name)
				}
			case *ast.ValueSpec:
				for _, name := range sp.Names {
					if name.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
						pass.Reportf(name.Pos(), "exported %s %s has no doc comment (on the spec or its block)", d.Tok, name.Name)
					}
				}
			}
		}
	}
}

// receiverExported reports whether a method's receiver type is exported
// (true for plain functions): an exported method on an unexported type is
// not part of the package API unless surfaced elsewhere, which the lint of
// that surface covers.
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	typ := d.Recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr: // generic receiver
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	var b strings.Builder
	typ := d.Recv.List[0].Type
	if st, ok := typ.(*ast.StarExpr); ok {
		typ = st.X
	}
	if id, ok := typ.(*ast.Ident); ok {
		b.WriteString(id.Name)
		b.WriteString(".")
	}
	b.WriteString(d.Name.Name)
	return b.String()
}
