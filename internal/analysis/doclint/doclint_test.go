package doclint_test

import (
	"testing"

	"annotadb/internal/analysis/analysistest"
	"annotadb/internal/analysis/doclint"
)

// TestDocLint runs the analyzer over the undoc golden package: a missing
// package comment, undocumented exported functions, methods, types, and
// variables, the documented and unexported negatives, and one
// suppressed-with-reason shim.
func TestDocLint(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), doclint.Default(), "undoc")
}

// TestDocLintExempt checks that an exempted import path produces no
// findings at all, even though the package violates every rule.
func TestDocLintExempt(t *testing.T) {
	a := doclint.New(doclint.Config{Exempt: []string{"exempt"}})
	analysistest.Run(t, analysistest.TestData(), a, "exempt")
}
