package analysis

import (
	"go/token"
	"testing"
)

// TestLoadTypechecksAgainstExportData loads this package by import path and
// checks the essentials the analyzers rely on: parsed syntax with comments,
// a type-checked package, and populated fact maps.
func TestLoadTypechecksAgainstExportData(t *testing.T) {
	pkgs, err := Load(".", "annotadb/internal/analysis")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.PkgPath != "annotadb/internal/analysis" {
		t.Errorf("PkgPath = %q", pkg.PkgPath)
	}
	if len(pkg.Files) == 0 {
		t.Fatal("no parsed files")
	}
	if pkg.Files[0].Comments == nil {
		t.Error("comments were not retained; suppression parsing needs them")
	}
	if pkg.Types == nil || pkg.Info == nil {
		t.Fatal("package is not type-checked")
	}
	if pkg.Types.Scope().Lookup("Load") == nil {
		t.Error("type scope is missing the Load function")
	}
	if len(pkg.Info.Defs) == 0 || len(pkg.Info.Uses) == 0 {
		t.Error("type-fact maps are empty")
	}
	if pkg.Fset == (*token.FileSet)(nil) {
		t.Error("nil FileSet")
	}
}

// TestLoadSkipsTestOnlyPackages checks that packages with no non-test Go
// files (internal/docs) are dropped rather than failing the load.
func TestLoadSkipsTestOnlyPackages(t *testing.T) {
	pkgs, err := Load(".", "annotadb/internal/docs")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 0 {
		t.Fatalf("loaded %d packages, want 0 (test-only package has no GoFiles)", len(pkgs))
	}
}
