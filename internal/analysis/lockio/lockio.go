// Package lockio implements the annotlint analyzer enforcing the hot-lock
// contract: while one of the configured hot mutexes is held (the WAL
// store's logMu, the incremental engine's lock, the stream broker's lock,
// the shard router's append lock), no blocking I/O may run — no os.File
// writes or fsyncs, no WAL appends, no HTTP calls, no channel sends, no
// sleeps — because every reader, writer, or health probe that needs the
// same lock would stall behind the disk or the network. The analyzer also
// checks that every hot-lock Lock() is paired with an Unlock() (direct or
// deferred) on every return path of the function that acquired it.
//
// The check is intraprocedural and deliberately conservative: branches are
// merged by intersection (a lock released on either arm is treated as
// released), goroutine bodies and function literals are analyzed as
// independent functions (code inside `go func(){...}()` does not run under
// the spawner's locks), and designed exceptions — the WAL's syncLog, whose
// entire purpose is to order an fsync against a file-handle swap — carry
// //annotlint:ignore markers stating the reason.
package lockio

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"

	"annotadb/internal/analysis"
)

// Config names the hot locks and the calls considered blocking I/O.
type Config struct {
	// Locks are struct fields of type sync.Mutex/RWMutex, as
	// "pkgpath.Type.field" keys.
	Locks []string
	// IO are the blocking calls, as "pkgpath.Func" or
	// "pkgpath.Type.Method" keys; "pkgpath.*" and "pkgpath.Type.*"
	// wildcards are allowed. Channel sends are always flagged.
	IO []string
}

// DefaultLocks are the repository's hot locks: every one of them sits on a
// path that readers, health probes, or all writers share.
var DefaultLocks = []string{
	"annotadb/internal/wal.Store.logMu",
	"annotadb/internal/incremental.Engine.mu",
	"annotadb/internal/stream.Broker.mu",
	"annotadb/internal/shard.Router.appendMu",
}

// DefaultIO are the blocking calls the repository's hot paths must not make
// under a hot lock: raw file syscalls, the WAL's append/fsync/swap surface,
// checkpoint serialization, HTTP, and sleeps.
var DefaultIO = []string{
	"os.File.*",
	"net/http.*",
	"time.Sleep",
	"annotadb/internal/wal.Log.Append",
	"annotadb/internal/wal.Log.Sync",
	"annotadb/internal/wal.Log.Truncate",
	"annotadb/internal/wal.Log.TruncateKeep",
	"annotadb/internal/wal.Log.Close",
	"annotadb/internal/wal.SegmentedLog.Append",
	"annotadb/internal/wal.SegmentedLog.Sync",
	"annotadb/internal/wal.SegmentedLog.ReadFrom",
	"annotadb/internal/wal.SegmentedLog.Close",
	"annotadb/internal/storage.WriteCheckpointFile",
	"annotadb/internal/storage.ReadCheckpointFile",
}

// Default returns the analyzer configured for this repository.
func Default() *analysis.Analyzer { return New(Config{Locks: DefaultLocks, IO: DefaultIO}) }

// New builds the analyzer for an explicit configuration (used by tests).
func New(cfg Config) *analysis.Analyzer {
	locks := make(map[string]bool, len(cfg.Locks))
	for _, l := range cfg.Locks {
		locks[l] = true
	}
	io := make(map[string]bool, len(cfg.IO))
	for _, c := range cfg.IO {
		io[c] = true
	}
	return &analysis.Analyzer{
		Name:       "lockio",
		Doc:        "flags blocking I/O and channel sends under hot locks, and Lock() without Unlock() on every return path",
		NeedsTypes: true,
		Run:        func(pass *analysis.Pass) error { return run(pass, locks, io) },
	}
}

func run(pass *analysis.Pass, locks, io map[string]bool) error {
	w := &walker{pass: pass, locks: locks, io: io}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					w.function(fn.Body)
				}
			case *ast.FuncLit:
				// Analyzed as its own function: its body runs with whatever
				// locks are held at call time, which this intraprocedural
				// check cannot know; what it can check is internal pairing.
				w.function(fn.Body)
			}
			return true
		})
	}
	return nil
}

// heldLock is one hot lock currently held on the path being walked.
type heldLock struct {
	key      string // config key, e.g. "pkg.Store.logMu"
	expr     string // source text of the lock expression, e.g. "s.logMu"
	pos      token.Pos
	deferred bool // an Unlock is deferred on this path
}

type walker struct {
	pass  *analysis.Pass
	locks map[string]bool
	io    map[string]bool
}

// function walks one function body with no locks held and reports locks
// still held when it falls off the end.
func (w *walker) function(body *ast.BlockStmt) {
	held, terminated := w.stmts(body.List, map[string]*heldLock{})
	if terminated {
		return
	}
	for _, h := range held {
		if !h.deferred {
			w.pass.Reportf(h.pos, "%s.Lock() is not released on the fall-through return path", h.expr)
		}
	}
}

// stmts walks a statement list, threading the held-lock set through it.
// The returned bool reports that the list always terminates (returns or
// panics) before reaching its end.
func (w *walker) stmts(list []ast.Stmt, held map[string]*heldLock) (map[string]*heldLock, bool) {
	for _, st := range list {
		var term bool
		held, term = w.stmt(st, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (w *walker) stmt(st ast.Stmt, held map[string]*heldLock) (map[string]*heldLock, bool) {
	switch s := st.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if key, expr, kind := w.lockOp(call); kind != 0 {
				held = clone(held)
				if kind == opLock {
					held[key] = &heldLock{key: key, expr: expr, pos: call.Pos()}
				} else {
					delete(held, key)
				}
				return held, false
			}
		}
		w.checkExpr(s.X, held)
	case *ast.DeferStmt:
		if key, _, kind := w.lockOp(s.Call); kind == opUnlock {
			if h, ok := held[key]; ok {
				held = clone(held)
				held[key] = &heldLock{key: h.key, expr: h.expr, pos: h.pos, deferred: true}
			}
			return held, false
		}
		// The deferred call itself runs at return time; whether a lock is
		// held then depends on defer ordering, which this walk does not
		// model. Its arguments are evaluated now, though.
		for _, a := range s.Call.Args {
			w.checkExpr(a, held)
		}
	case *ast.SendStmt:
		if h := anyHeld(held); h != nil {
			w.pass.Reportf(s.Pos(), "channel send while %s is held; a blocked receiver stalls everyone waiting on the lock", h.expr)
		}
		w.checkExpr(s.Chan, held)
		w.checkExpr(s.Value, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.checkExpr(e, held)
		}
		for _, e := range s.Lhs {
			w.checkExpr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.checkExpr(v, held)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.checkExpr(e, held)
		}
		for _, h := range held {
			if !h.deferred {
				w.pass.Reportf(s.Pos(), "return while %s is held without a deferred or preceding Unlock", h.expr)
			}
		}
		return held, true
	case *ast.IfStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		w.checkExpr(s.Cond, held)
		bodyOut, bodyTerm := w.stmts(s.Body.List, clone(held))
		elseOut, elseTerm := held, false
		if s.Else != nil {
			elseOut, elseTerm = w.stmt(s.Else, clone(held))
		}
		switch {
		case bodyTerm && elseTerm:
			return held, true
		case bodyTerm:
			return elseOut, false
		case elseTerm:
			return bodyOut, false
		default:
			return intersect(bodyOut, elseOut), false
		}
	case *ast.BlockStmt:
		return w.stmts(s.List, held)
	case *ast.ForStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.checkExpr(s.Cond, held)
		}
		w.stmts(s.Body.List, clone(held))
		return held, false
	case *ast.RangeStmt:
		w.checkExpr(s.X, held)
		w.stmts(s.Body.List, clone(held))
		return held, false
	case *ast.SwitchStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.checkExpr(s.Tag, held)
		}
		for _, cc := range s.Body.List {
			if c, ok := cc.(*ast.CaseClause); ok {
				for _, e := range c.List {
					w.checkExpr(e, held)
				}
				w.stmts(c.Body, clone(held))
			}
		}
		return held, false
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		for _, cc := range s.Body.List {
			if c, ok := cc.(*ast.CaseClause); ok {
				w.stmts(c.Body, clone(held))
			}
		}
		return held, false
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if c, ok := cc.(*ast.CommClause); ok {
				if send, ok := c.Comm.(*ast.SendStmt); ok {
					if h := anyHeld(held); h != nil {
						w.pass.Reportf(send.Pos(), "channel send while %s is held; a blocked receiver stalls everyone waiting on the lock", h.expr)
					}
				}
				w.stmts(c.Body, clone(held))
			}
		}
		return held, false
	case *ast.GoStmt:
		// The spawned goroutine does not run under the spawner's locks; its
		// body is analyzed as an independent function by run.
		return held, false
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)
	}
	return held, false
}

// checkExpr flags blocking calls inside an expression evaluated while hot
// locks are held. Function literals are skipped: their bodies run later.
func (w *walker) checkExpr(e ast.Expr, held map[string]*heldLock) {
	h := anyHeld(held)
	if h == nil || e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.Callee(w.pass.Info, call)
		if fn == nil {
			return true
		}
		if name, ok := analysis.MatchFunc(fn, w.io); ok {
			w.pass.Reportf(call.Pos(), "call to %s while %s is held; blocking I/O under a hot lock stalls everyone waiting on it", name, h.expr)
		}
		return true
	})
}

type lockOpKind int

const (
	opNone lockOpKind = iota
	opLock
	opUnlock
)

// lockOp classifies a call as Lock/RLock or Unlock/RUnlock on a configured
// hot lock, returning the lock's config key and its source expression.
func (w *walker) lockOp(call *ast.CallExpr) (key, expr string, kind lockOpKind) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return "", "", opNone
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = opLock
	case "Unlock", "RUnlock":
		kind = opUnlock
	default:
		return "", "", opNone
	}
	field, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return "", "", opNone
	}
	fsel, ok := w.pass.Info.Selections[field]
	if !ok {
		return "", "", opNone
	}
	owner := analysis.NamedOf(fsel.Recv())
	if owner == nil {
		return "", "", opNone
	}
	k := analysis.TypeKey(owner) + "." + field.Sel.Name
	if !w.locks[k] {
		return "", "", opNone
	}
	return k, exprString(field), kind
}

// anyHeld returns one currently held lock, or nil.
func anyHeld(held map[string]*heldLock) *heldLock {
	for _, h := range held {
		return h
	}
	return nil
}

func clone(held map[string]*heldLock) map[string]*heldLock {
	out := make(map[string]*heldLock, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// intersect merges two branch outcomes conservatively: a lock is held after
// the branch only if both arms leave it held, and its unlock is deferred
// only if both arms deferred it.
func intersect(a, b map[string]*heldLock) map[string]*heldLock {
	out := make(map[string]*heldLock, len(a))
	for k, va := range a {
		if vb, ok := b[k]; ok {
			h := *va
			h.deferred = va.deferred && vb.deferred
			out[k] = &h
		}
	}
	return out
}

// exprString renders an expression back to source text for diagnostics.
func exprString(e ast.Expr) string {
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, token.NewFileSet(), e)
	return buf.String()
}
