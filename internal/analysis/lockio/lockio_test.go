package lockio_test

import (
	"testing"

	"annotadb/internal/analysis/analysistest"
	"annotadb/internal/analysis/lockio"
)

// TestLockIO runs the analyzer over the lockuse golden package: fsync and
// file writes under the hot lock (the shape the WAL's syncLog is the
// sanctioned exception to), channel sends under the lock, Lock without
// Unlock on early-return and fall-through paths, plus the clean shapes —
// deferred unlock, branch release, goroutine bodies — and one
// suppressed-with-reason fsync.
func TestLockIO(t *testing.T) {
	a := lockio.New(lockio.Config{
		Locks: []string{"lockuse.Store.mu"},
		IO:    []string{"os.File.*", "lockuse.Log.Sync"},
	})
	analysistest.Run(t, analysistest.TestData(), a, "lockuse")
}
