// Package lockuse exercises the lockio analyzer: blocking I/O and channel
// sends under a hot lock, and Lock without Unlock on a return path.
package lockuse

import (
	"os"
	"sync"
)

// Log is a WAL-like appender whose Sync is configured as blocking I/O.
type Log struct{}

// Sync fsyncs the log.
func (l *Log) Sync() error { return nil }

// Store owns the hot lock mu.
type Store struct {
	mu   sync.Mutex
	log  Log
	file *os.File
	acks chan int
	n    int
}

// SyncUnderLock mirrors the fsync-under-the-hot-lock bug shape: every
// other writer queues on mu for the duration of the disk flush.
func (s *Store) SyncUnderLock() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.log.Sync() // want `call to lockuse.Log.Sync while s.mu is held`
}

// WriteFileUnderLock trips the os.File wildcard.
func (s *Store) WriteFileUnderLock(b []byte) {
	s.mu.Lock()
	s.file.Write(b) // want `call to os.File.Write while s.mu is held`
	s.mu.Unlock()
}

// SendUnderLock blocks every mu waiter behind a slow receiver.
func (s *Store) SendUnderLock(v int) {
	s.mu.Lock()
	s.acks <- v // want `channel send while s.mu is held`
	s.mu.Unlock()
}

// SelectSendUnderLock is the select-statement form of the same bug.
func (s *Store) SelectSendUnderLock(v int) {
	s.mu.Lock()
	select {
	case s.acks <- v: // want `channel send while s.mu is held`
	default:
	}
	s.mu.Unlock()
}

// LeakOnReturn forgets the unlock on the early-return path.
func (s *Store) LeakOnReturn(cond bool) int {
	s.mu.Lock()
	if cond {
		return 0 // want `return while s.mu is held`
	}
	s.mu.Unlock()
	return 1
}

// LeakOnFallThrough never unlocks at all.
func (s *Store) LeakOnFallThrough() {
	s.mu.Lock() // want `s.mu.Lock\(\) is not released on the fall-through return path`
	s.n++
}

// Balanced is the clean shape: the I/O happens after the release.
func (s *Store) Balanced() error {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	return s.log.Sync()
}

// BranchRelease unlocks on both arms; the merge sees the lock released.
func (s *Store) BranchRelease(cond bool) error {
	s.mu.Lock()
	if cond {
		s.mu.Unlock()
	} else {
		s.n++
		s.mu.Unlock()
	}
	return s.log.Sync()
}

// SpawnUnderLock is clean: the goroutine body runs after the spawner's
// critical section, not inside it.
func (s *Store) SpawnUnderLock() {
	s.mu.Lock()
	go func() {
		s.log.Sync()
	}()
	s.mu.Unlock()
}

// DeferredOnly relies entirely on defer; no finding.
func (s *Store) DeferredOnly() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	return s.n
}

// SealedSync is the sanctioned exception, mirroring the WAL's syncLog: the
// fsync must be ordered against a file-handle swap under the same lock.
// The suppression must keep working or this file stops matching its golden
// expectations.
func (s *Store) SealedSync() error {
	s.mu.Lock()
	//annotlint:ignore lockio fsync must hold mu to order against the handle swap; only one fsync is ever in flight
	err := s.log.Sync()
	s.mu.Unlock()
	return err
}
