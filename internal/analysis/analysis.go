// Package analysis is the repository's static-analysis framework: a small,
// dependency-free mirror of the golang.org/x/tools/go/analysis API (Analyzer,
// Pass, Diagnostic) plus a package loader and a suppression-aware runner.
//
// The toolchain image this repository builds under has no module proxy
// access, so the x/tools analysis framework cannot be imported; this package
// reimplements the subset the annotlint suite needs on the standard
// library's go/ast, go/parser, and go/types. Packages are type-checked from
// source, with every dependency (standard library and intra-module alike)
// imported from compiler export data produced by `go list -export`, so a run
// is as fast as an incremental build and needs no network.
//
// The analyzers themselves live in subpackages (snapshotimmut, lockio,
// errlatch, atomicmix, doclint); cmd/annotlint is the multichecker driver
// that runs them all and fails on any diagnostic. Findings are suppressed
// only by an in-source comment of the form
//
//	//annotlint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed on the flagged line or the line directly above it. The reason is
// mandatory — a bare ignore is itself a diagnostic — and a suppression that
// stops matching anything is reported as unused, so stale exemptions cannot
// accumulate. See ARCHITECTURE.md's "Static analysis" section for the
// invariant each analyzer enforces.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named invariant check. Run receives a fully loaded,
// type-checked package and reports findings through the Pass; it returns an
// error only for internal failures (a bad configuration, not a finding).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //annotlint:ignore comments. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run executes the check over one package.
	Run func(*Pass) error
	// NeedsTypes reports whether Run requires type information. Analyzers
	// that operate on syntax alone (doclint) leave it false and may be run
	// over parse-only packages.
	NeedsTypes bool
}

// Pass carries one package through one analyzer.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions of Files to file/line/column.
	Fset *token.FileSet
	// Files is the package's parsed syntax (non-test files only).
	Files []*ast.File
	// Pkg is the type-checked package, nil for parse-only loads.
	Pkg *types.Package
	// Info holds type facts for every expression in Files, nil for
	// parse-only loads.
	Info *types.Info
	// PkgPath is the package's import path (set even when Pkg is nil).
	PkgPath string

	report func(Diagnostic)
}

// Report records one finding.
func (p *Pass) Report(d Diagnostic) {
	if d.Analyzer == "" {
		d.Analyzer = p.Analyzer.Name
	}
	p.report(d)
}

// Reportf records one finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position inside the analyzed package and a
// message describing the violated invariant.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Pos
	// Analyzer names the check that produced it (filled by Pass.Report).
	Analyzer string
	// Message describes the violation.
	Message string
}

// Finding is a resolved Diagnostic: the same content with the token position
// rendered to a concrete file/line/column, ready to print or compare.
type Finding struct {
	// Position is the resolved source location.
	Position token.Position
	// Analyzer names the check that produced the finding.
	Analyzer string
	// Message describes the violation.
	Message string
}

// String renders the finding in the conventional file:line:col: form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Position.Filename, f.Position.Line, f.Position.Column, f.Analyzer, f.Message)
}

// TypeOf returns the type of expression e, or nil when unknown or when the
// pass was loaded without type information.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// ObjectOf returns the object an identifier denotes (its use or definition),
// or nil when unknown.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if p.Info == nil {
		return nil
	}
	if o := p.Info.ObjectOf(id); o != nil {
		return o
	}
	return nil
}
