package snapshotimmut_test

import (
	"testing"

	"annotadb/internal/analysis/analysistest"
	"annotadb/internal/analysis/snapshotimmut"
)

// TestSnapshotImmut runs the analyzer over a two-package golden tree: snap
// owns the View snapshot type (its construction-time mutations must pass),
// consumer mutates published views every way the analyzer flags, including
// the through-a-method-result write that made PR 3's torn-read bug
// possible, plus one sanctioned suppressed-with-reason mutation.
func TestSnapshotImmut(t *testing.T) {
	a := snapshotimmut.New(snapshotimmut.Config{Types: []string{"snap.View"}})
	analysistest.Run(t, analysistest.TestData(), a, "snap", "consumer")
}
