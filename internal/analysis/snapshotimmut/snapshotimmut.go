// Package snapshotimmut implements the annotlint analyzer enforcing the
// published-snapshot immutability contract: values of the snapshot types the
// serving layer shares across goroutines without synchronization
// (rules.View, relation.View, serve.Snapshot, stream.Event, predict.Compiled)
// must never be written through outside the package that owns the type. A
// reader holding a published snapshot relies on every field, slice, and map
// reachable from it being frozen; one assignment through a shared view is a
// data race the type system cannot see.
//
// The analyzer flags, outside the owning package: field assignments through
// a snapshot-typed value, element and map writes, ++/--, delete, and
// append/copy whose destination derives from a snapshot (append can write
// into the shared backing array even when its result is stored elsewhere).
// Mutations inside the owning package — construction before publish — are
// the owner's business and are not flagged.
package snapshotimmut

import (
	"go/ast"
	"go/types"

	"annotadb/internal/analysis"
)

// Config lists the protected snapshot types as "pkgpath.TypeName" keys.
type Config struct {
	// Types are the published-snapshot types, e.g.
	// "annotadb/internal/rules.View".
	Types []string
}

// DefaultTypes are the repository's published snapshot types.
var DefaultTypes = []string{
	"annotadb/internal/rules.View",
	"annotadb/internal/relation.View",
	"annotadb/internal/serve.Snapshot",
	"annotadb/internal/stream.Event",
	"annotadb/internal/predict.Compiled",
}

// Default returns the analyzer configured for this repository.
func Default() *analysis.Analyzer { return New(Config{Types: DefaultTypes}) }

// New builds the analyzer for an explicit type list (used by tests).
func New(cfg Config) *analysis.Analyzer {
	set := make(map[string]bool, len(cfg.Types))
	for _, t := range cfg.Types {
		set[t] = true
	}
	return &analysis.Analyzer{
		Name:       "snapshotimmut",
		Doc:        "flags writes through published snapshot types outside their owning package",
		NeedsTypes: true,
		Run:        func(pass *analysis.Pass) error { return run(pass, set) },
	}
}

func run(pass *analysis.Pass, set map[string]bool) error {
	c := &checker{pass: pass, set: set}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					c.checkWrite(lhs, "assignment")
				}
			case *ast.IncDecStmt:
				c.checkWrite(st.X, "increment")
			case *ast.CallExpr:
				c.checkBuiltin(st)
			}
			return true
		})
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
	set  map[string]bool
}

// snapType returns the protected named type of e's (pointer-stripped) type,
// when e is a snapshot owned by a package other than the one under analysis.
func (c *checker) snapType(e ast.Expr) *types.Named {
	n := analysis.NamedOf(c.pass.TypeOf(e))
	if n == nil || !c.set[analysis.TypeKey(n)] {
		return nil
	}
	if n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == c.pass.PkgPath {
		return nil // the owner may mutate during construction
	}
	return n
}

// checkWrite flags a write target that reaches through a snapshot value:
// x.Field = v, x.M[k] = v, *p = v, x.Slice[i]++, and so on.
func (c *checker) checkWrite(e ast.Expr, what string) {
	var inner ast.Expr
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		inner = x.X
	case *ast.IndexExpr:
		inner = x.X
	case *ast.StarExpr:
		inner = x.X
	default:
		return // writing a plain variable replaces a reference; it mutates nothing shared
	}
	if n := c.derives(inner); n != nil {
		c.pass.Reportf(e.Pos(), "%s through published snapshot type %s; snapshots are immutable outside %s",
			what, analysis.TypeKey(n), n.Obj().Pkg().Path())
	}
}

// checkBuiltin flags append/copy/delete whose destination derives from a
// snapshot value.
func (c *checker) checkBuiltin(call *ast.CallExpr) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || len(call.Args) == 0 {
		return
	}
	if c.pass.Info == nil {
		return
	}
	if _, isBuiltin := c.pass.ObjectOf(id).(*types.Builtin); !isBuiltin {
		return
	}
	switch id.Name {
	case "append", "copy", "delete", "clear":
		if n := c.derives(call.Args[0]); n != nil {
			c.pass.Reportf(call.Pos(), "%s on data shared with published snapshot type %s; snapshots are immutable outside %s",
				id.Name, analysis.TypeKey(n), n.Obj().Pkg().Path())
		}
	}
}

// derives reports the protected snapshot type e reaches through: e itself,
// or any base it selects, indexes, dereferences, slices, or receives from a
// method call on.
func (c *checker) derives(e ast.Expr) *types.Named {
	e = ast.Unparen(e)
	if n := c.snapType(e); n != nil {
		return n
	}
	switch x := e.(type) {
	case *ast.SelectorExpr:
		return c.derives(x.X)
	case *ast.IndexExpr:
		return c.derives(x.X)
	case *ast.StarExpr:
		return c.derives(x.X)
	case *ast.SliceExpr:
		return c.derives(x.X)
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
			// A method result (e.g. view.Sorted()) shares the snapshot's
			// backing data; writing into it is writing into the snapshot.
			return c.derives(sel.X)
		}
	}
	return nil
}
