// Package snap owns the published snapshot type View. Mutations inside
// this package are construction-time and sanctioned; the analyzer must not
// flag them.
package snap

// View is a published snapshot: immutable outside this package.
type View struct {
	// Counts maps item to frequency.
	Counts map[string]int
	// Items lists the distinct items.
	Items []string
	seq   uint64
}

// New builds a View. The owner mutates freely before publishing.
func New(items []string) *View {
	v := &View{Counts: map[string]int{}}
	for _, it := range items {
		v.Items = append(v.Items, it)
		v.Counts[it]++
	}
	v.seq = 1
	return v
}

// Sorted returns the items, backed by the snapshot's own array.
func (v *View) Sorted() []string { return v.Items }
