// Package consumer exercises writes through a published snapshot from
// outside the owning package.
package consumer

import "snap"

// Mutate writes through a published snapshot every way the analyzer flags.
func Mutate(v *snap.View) {
	v.Items[0] = "x"         // want `assignment through published snapshot type snap.View`
	v.Counts["k"] = 1        // want `assignment through published snapshot type snap.View`
	v.Counts["k"]++          // want `increment through published snapshot type snap.View`
	delete(v.Counts, "k")    // want `delete on data shared with published snapshot type snap.View`
	_ = append(v.Items, "y") // want `append on data shared with published snapshot type snap.View`
	v.Sorted()[0] = "z"      // want `assignment through published snapshot type snap.View`
}

// Read-only access is fine.
func Read(v *snap.View) int { return len(v.Items) }

// Rebind replaces a local reference; nothing shared is written.
func Rebind(v *snap.View) {
	v = nil
	_ = v
}

// CopyOut copies snapshot data into private storage; the snapshot is only
// the source, never the destination.
func CopyOut(v *snap.View) []string {
	out := make([]string, len(v.Items))
	copy(out, v.Items)
	return out
}

// Scrub carries the sanctioned exception: the caller deep-copied the view,
// so the mutation touches private data. The suppression must keep working
// or this file stops matching its golden expectations.
func Scrub(v *snap.View) {
	//annotlint:ignore snapshotimmut v is a private deep copy made by the caller, never the published view
	v.Items[0] = ""
}
