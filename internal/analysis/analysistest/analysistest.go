// Package analysistest runs an analyzer over golden packages under a
// testdata/src tree and compares its findings against // want comments, the
// same contract as golang.org/x/tools/go/analysis/analysistest (which the
// offline toolchain cannot import).
//
// A testdata package lives in testdata/src/<importpath>/ and may import
// other testdata packages by that path, or anything the module's dependency
// closure provides (standard library included) — external imports are
// resolved from `go list -export` data. Expected findings are written as
//
//	offending code // want "regexp"
//
// where the quoted pattern (double- or back-quoted, several per comment
// allowed) must match the finding's message on that line. Every finding
// must be wanted and every want must be found. Because findings are
// compared after suppression handling, a line carrying a valid
// //annotlint:ignore marker and no want is the golden form of the
// suppressed-with-reason case: the test fails if the suppression stops
// working.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"annotadb/internal/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory (go test always runs with the package directory as cwd).
func TestData() string {
	p, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return p
}

// Run loads each pattern package from testdata/src, applies the analyzer,
// and reports any divergence from the // want comments as test errors.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	ld := &loader{
		src:     filepath.Join(testdata, "src"),
		fset:    token.NewFileSet(),
		checked: map[string]*analysis.Package{},
	}
	for _, pat := range patterns {
		pkg, err := ld.load(pat)
		if err != nil {
			t.Fatalf("load %s: %v", pat, err)
		}
		findings, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("run %s on %s: %v", a.Name, pat, err)
		}
		check(t, pkg, findings)
	}
}

// want is one expectation parsed from a // want comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// check compares findings against the package's want comments.
func check(t *testing.T, pkg *analysis.Package, findings []analysis.Finding) {
	t.Helper()
	wants := parseWants(t, pkg)
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if w.matched || w.file != f.Position.Filename || w.line != f.Position.Line {
				continue
			}
			if w.re.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: want %q: no matching finding", w.file, w.line, w.raw)
		}
	}
}

// wantRe extracts the quoted expectation patterns from a want comment: one
// or more double-quoted (Go syntax) or back-quoted strings.
var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// parseWants scans every file of pkg for // want comments.
func parseWants(t *testing.T, pkg *analysis.Package) []*want {
	t.Helper()
	var out []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				trimmed := strings.TrimSpace(text)
				if !strings.HasPrefix(trimmed, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range wantRe.FindAllString(strings.TrimPrefix(trimmed, "want "), -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					out = append(out, &want{file: pos.Filename, line: pos.Line, re: re, raw: pat})
				}
			}
		}
	}
	return out
}

// loader type-checks testdata packages, resolving testdata-local imports
// from source (recursively) and everything else from export data.
type loader struct {
	src     string
	fset    *token.FileSet
	checked map[string]*analysis.Package
	ext     *analysis.ExportImporter
	loading []string
}

// load returns the type-checked testdata package at import path.
func (ld *loader) load(path string) (*analysis.Package, error) {
	if pkg, ok := ld.checked[path]; ok {
		return pkg, nil
	}
	for _, p := range ld.loading {
		if p == path {
			return nil, fmt.Errorf("testdata import cycle through %s", path)
		}
	}
	ld.loading = append(ld.loading, path)
	defer func() { ld.loading = ld.loading[:len(ld.loading)-1] }()

	dir := filepath.Join(ld.src, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	for _, name := range names {
		f, perr := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if perr != nil {
			return nil, perr
		}
		files = append(files, f)
	}
	// Resolve imports: testdata-local ones load recursively so their types
	// are on hand; the rest resolve through export data on demand.
	var external []string
	for _, f := range files {
		for _, imp := range f.Imports {
			p, _ := strconv.Unquote(imp.Path.Value)
			if _, err := os.Stat(filepath.Join(ld.src, filepath.FromSlash(p))); err == nil {
				if _, lerr := ld.load(p); lerr != nil {
					return nil, lerr
				}
			} else {
				external = append(external, p)
			}
		}
	}
	if err := ld.ensureExternal(external); err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: ld, Sizes: types.SizesFor("gc", runtime.GOARCH)}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %w", path, err)
	}
	pkg := &analysis.Package{
		PkgPath: path,
		Dir:     dir,
		Fset:    ld.fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}
	ld.checked[path] = pkg
	return pkg, nil
}

// Import implements types.Importer for the type checker: testdata packages
// come from the checked cache, the rest from export data.
func (ld *loader) Import(path string) (*types.Package, error) {
	if pkg, ok := ld.checked[path]; ok {
		return pkg.Types, nil
	}
	return ld.ext.Import(path)
}

// ensureExternal makes export data available for the given import paths
// (and their dependencies). The go list run happens in the test's working
// directory, which go test sets to the package under test — inside the
// module, so the module's whole dependency closure is reachable.
func (ld *loader) ensureExternal(paths []string) error {
	if ld.ext == nil {
		ld.ext = analysis.NewExportImporter(ld.fset)
	}
	var missing []string
	for _, p := range paths {
		if !ld.ext.Has(p) {
			missing = append(missing, p)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	sort.Strings(missing)
	return ld.ext.Add(".", missing...)
}
