package analysis

import (
	"go/ast"
	"go/types"
)

// Deref strips pointer indirections from a type.
func Deref(t types.Type) types.Type {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			return t
		}
		t = p.Elem()
	}
}

// NamedOf returns the named type behind t (through pointers and aliases),
// or nil when t is not a named type.
func NamedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if n, ok := Deref(types.Unalias(t)).(*types.Named); ok {
		return n
	}
	return nil
}

// TypeKey renders a named type as "pkgpath.Name", or "" for types outside
// any package (error, built-ins).
func TypeKey(n *types.Named) string {
	if n == nil || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name()
}

// Callee resolves the static function or method a call invokes, or nil for
// builtins, conversions, and dynamic calls through function values.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	if info == nil {
		return nil
	}
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.ObjectOf(id).(*types.Func)
	return fn
}

// FuncKeys renders the config-matchable keys of a function, most specific
// first: "pkg.Recv.Name", "pkg.Recv.*", "pkg.Name", and "pkg.*". Methods
// produce the receiver forms (with pointers stripped); plain functions the
// package-level forms.
func FuncKeys(fn *types.Func) []string {
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	pkg := fn.Pkg().Path()
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if n := NamedOf(sig.Recv().Type()); n != nil {
			return []string{
				pkg + "." + n.Obj().Name() + "." + fn.Name(),
				pkg + "." + n.Obj().Name() + ".*",
				pkg + ".*",
			}
		}
		// Method on an unnamed receiver (interface literal): match by
		// package wildcard only.
		return []string{pkg + ".*"}
	}
	return []string{pkg + "." + fn.Name(), pkg + ".*"}
}

// MatchFunc reports whether the called function matches any of the
// configured patterns (exact "pkg.Func" / "pkg.Type.Method" keys or
// wildcards "pkg.*" / "pkg.Type.*"), returning the human-readable name.
func MatchFunc(fn *types.Func, patterns map[string]bool) (string, bool) {
	keys := FuncKeys(fn)
	for _, k := range keys {
		if patterns[k] {
			return keys[0], true
		}
	}
	return "", false
}

// IsErrorType reports whether t implements the error interface.
func IsErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errType)
}
