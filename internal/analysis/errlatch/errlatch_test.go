package errlatch_test

import (
	"testing"

	"annotadb/internal/analysis/analysistest"
	"annotadb/internal/analysis/errlatch"
)

// TestErrLatch runs the analyzer over the latch golden package: identity
// comparisons and switch cases against a sentinel, string matching on
// error text, and the dropped-Committed shape that caused the silent
// durability loss PR 6 fixed, plus the errors.Is forms and one
// suppressed-with-reason best-effort call.
func TestErrLatch(t *testing.T) {
	a := errlatch.New(errlatch.Config{MustUse: []string{"latch.Journal.Committed"}})
	analysistest.Run(t, analysistest.TestData(), a, "latch")
}
