// Package errlatch implements the annotlint analyzer enforcing the error
// discipline around the durability latch: sentinel errors must be matched
// with errors.Is (the WAL wraps its sentinels with context as they cross
// layer boundaries, so ==/!= silently stops matching), error text must not
// be string-matched, and the results of the durability-contract methods —
// Journal.Committed, GroupJournal.Seal, Router.Err — must not be dropped,
// because dropping them is exactly the silent-loss bug class PR 6 fixed.
//
// Three checks:
//
//  1. ==/!= (and switch cases) comparing an error against a sentinel — a
//     package-level error variable named Err* or EOF — instead of errors.Is.
//  2. strings.Contains/HasPrefix/HasSuffix applied to err.Error() text.
//  3. A call to a configured must-use function or method whose result is
//     discarded: a bare expression statement, assignment to blank only, or
//     a go/defer call.
package errlatch

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"annotadb/internal/analysis"
)

// Config parameterizes the must-use list.
type Config struct {
	// MustUse lists functions whose results must be consumed, as
	// "pkgpath.Func" / "pkgpath.Type.Method" keys (wildcards allowed).
	MustUse []string
}

// DefaultMustUse are the repository's durability-contract calls: each one
// returns the only evidence that writes actually reached disk.
var DefaultMustUse = []string{
	"annotadb/internal/serve.Journal.Committed",
	"annotadb/internal/serve.GroupJournal.Seal",
	"annotadb/internal/wal.Store.Committed",
	"annotadb/internal/wal.Store.Seal",
	"annotadb/internal/shard.Router.Err",
}

// Default returns the analyzer configured for this repository.
func Default() *analysis.Analyzer { return New(Config{MustUse: DefaultMustUse}) }

// New builds the analyzer for an explicit configuration (used by tests).
func New(cfg Config) *analysis.Analyzer {
	mustUse := make(map[string]bool, len(cfg.MustUse))
	for _, m := range cfg.MustUse {
		mustUse[m] = true
	}
	return &analysis.Analyzer{
		Name:       "errlatch",
		Doc:        "flags ==/!= and string matching against sentinel errors, and dropped durability-contract results",
		NeedsTypes: true,
		Run:        func(pass *analysis.Pass) error { return run(pass, mustUse) },
	}
}

func run(pass *analysis.Pass, mustUse map[string]bool) error {
	c := &checker{pass: pass, mustUse: mustUse}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				c.checkCompare(x)
			case *ast.SwitchStmt:
				c.checkSwitch(x)
			case *ast.CallExpr:
				c.checkStringMatch(x)
			case *ast.ExprStmt:
				c.checkDropped(x.X, "discarded")
			case *ast.GoStmt:
				c.checkDropped(x.Call, "discarded by go statement")
			case *ast.DeferStmt:
				c.checkDropped(x.Call, "discarded by defer")
			case *ast.AssignStmt:
				c.checkBlankAssign(x)
			}
			return true
		})
	}
	return nil
}

type checker struct {
	pass    *analysis.Pass
	mustUse map[string]bool
}

// sentinel reports whether e is a use of a package-level error variable
// following the sentinel naming convention (Err* or EOF), returning its
// name for the diagnostic.
func (c *checker) sentinel(e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return "", false
	}
	v, ok := c.pass.ObjectOf(id).(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return "", false
	}
	if !analysis.IsErrorType(v.Type()) {
		return "", false
	}
	if !strings.HasPrefix(v.Name(), "Err") && v.Name() != "EOF" {
		return "", false
	}
	return v.Name(), true
}

// checkCompare flags `err == ErrFoo` and `err != ErrFoo`.
func (c *checker) checkCompare(b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	for _, pair := range [][2]ast.Expr{{b.X, b.Y}, {b.Y, b.X}} {
		if name, ok := c.sentinel(pair[0]); ok && analysis.IsErrorType(c.pass.TypeOf(pair[1])) {
			c.pass.Reportf(b.Pos(), "comparing error with %s %s; use errors.Is so wrapped errors still match", b.Op, name)
			return
		}
	}
}

// checkSwitch flags `switch err { case ErrFoo: ... }`.
func (c *checker) checkSwitch(s *ast.SwitchStmt) {
	if s.Tag == nil || !analysis.IsErrorType(c.pass.TypeOf(s.Tag)) {
		return
	}
	for _, cc := range s.Body.List {
		clause, ok := cc.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range clause.List {
			if name, ok := c.sentinel(e); ok {
				c.pass.Reportf(e.Pos(), "switch case matches sentinel %s by identity; use errors.Is so wrapped errors still match", name)
			}
		}
	}
}

// checkStringMatch flags strings.Contains/HasPrefix/HasSuffix over the text
// of an error.
func (c *checker) checkStringMatch(call *ast.CallExpr) {
	fn := analysis.Callee(c.pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "strings" {
		return
	}
	switch fn.Name() {
	case "Contains", "HasPrefix", "HasSuffix", "EqualFold", "Index":
	default:
		return
	}
	for _, arg := range call.Args {
		if c.isErrorText(arg) {
			c.pass.Reportf(call.Pos(), "matching on error text with strings.%s; compare with errors.Is against a sentinel instead", fn.Name())
			return
		}
	}
}

// isErrorText reports whether e is a call to the Error method of an error.
func (c *checker) isErrorText(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
		return false
	}
	return analysis.IsErrorType(c.pass.TypeOf(sel.X))
}

// checkDropped flags a must-use call whose results are thrown away.
func (c *checker) checkDropped(e ast.Expr, how string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := analysis.Callee(c.pass.Info, call)
	if fn == nil {
		return
	}
	if name, ok := analysis.MatchFunc(fn, c.mustUse); ok {
		c.pass.Reportf(call.Pos(), "result of %s %s; this is the durability signal — check it", name, how)
	}
}

// checkBlankAssign flags `_ = mustUseCall()` where every destination is
// blank.
func (c *checker) checkBlankAssign(a *ast.AssignStmt) {
	for _, lhs := range a.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name != "_" {
			return
		}
	}
	for _, rhs := range a.Rhs {
		c.checkDropped(rhs, "assigned to blank")
	}
}
