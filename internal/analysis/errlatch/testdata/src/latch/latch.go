// Package latch exercises the errlatch analyzer: sentinel matching and
// the durability-contract must-use rule.
package latch

import (
	"errors"
	"strings"
)

// ErrGone is the sentinel for a missing record; callers receive it wrapped
// with context.
var ErrGone = errors.New("latch: record gone")

// Journal is the durability contract: Committed's result is the only
// evidence that writes reached disk.
type Journal struct{}

// Committed reports the first durability error.
func (j *Journal) Committed() error { return nil }

// BadCompare matches the sentinel by identity; wrapped errors slip through.
func BadCompare(err error) bool {
	return err == ErrGone // want `comparing error with == ErrGone`
}

// BadNotEqual is the negated form of the same mistake.
func BadNotEqual(err error) bool {
	return err != ErrGone // want `comparing error with != ErrGone`
}

// BadSwitch matches the sentinel as a switch case.
func BadSwitch(err error) int {
	switch err {
	case ErrGone: // want `switch case matches sentinel ErrGone by identity`
		return 1
	case nil:
		return 0
	}
	return 2
}

// BadText greps the error's rendered text.
func BadText(err error) bool {
	return strings.Contains(err.Error(), "gone") // want `matching on error text with strings.Contains`
}

// DropCommitted reproduces the silent-loss shape PR 6 fixed: the one
// signal that writes reached disk, thrown away.
func DropCommitted(j *Journal) {
	j.Committed() // want `result of latch.Journal.Committed discarded`
}

// BlankCommitted drops the signal through a blank assignment.
func BlankCommitted(j *Journal) {
	_ = j.Committed() // want `result of latch.Journal.Committed assigned to blank`
}

// GoCommitted drops the signal by spawning the call.
func GoCommitted(j *Journal) {
	go j.Committed() // want `result of latch.Journal.Committed discarded by go statement`
}

// GoodCompare matches through wrapping.
func GoodCompare(err error) bool { return errors.Is(err, ErrGone) }

// NilCheck is fine: nil is not a sentinel.
func NilCheck(err error) bool { return err == nil }

// CheckCommitted consumes the durability signal properly.
func CheckCommitted(j *Journal) error { return j.Committed() }

// FlushBestEffort carries the sanctioned exception. The suppression must
// keep working or this file stops matching its golden expectations.
func FlushBestEffort(j *Journal) {
	//annotlint:ignore errlatch shutdown path: the latch already records the first error; this call only nudges a final sync
	j.Committed()
}
