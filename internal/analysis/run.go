package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// IgnorePrefix is the comment marker that suppresses a finding:
//
//	//annotlint:ignore <analyzer>[,<analyzer>...] <reason>
//
// on the flagged line or the line directly above it. The reason is
// mandatory; a marker without one is itself reported, as is a marker that
// no longer suppresses anything.
const IgnorePrefix = "annotlint:ignore"

// DriverName is the pseudo-analyzer findings about the suppression contract
// itself are attributed to (malformed or unused ignore comments).
const DriverName = "annotlint"

// suppression is one parsed //annotlint:ignore comment.
type suppression struct {
	pos       token.Pos
	file      string
	line      int
	analyzers []string
	reason    string
	used      bool
}

// parseSuppressions scans a package's comments for ignore markers.
// Malformed markers (no analyzer list or no reason) are reported
// immediately via report.
func parseSuppressions(pkg *Package, report func(Diagnostic)) []*suppression {
	var out []*suppression
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, IgnorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, IgnorePrefix))
				names, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				if names == "" || reason == "" {
					report(Diagnostic{
						Pos:      c.Pos(),
						Analyzer: DriverName,
						Message:  fmt.Sprintf("malformed suppression: want //%s <analyzer> <reason>", IgnorePrefix),
					})
					continue
				}
				p := pkg.Fset.Position(c.Pos())
				out = append(out, &suppression{
					pos:       c.Pos(),
					file:      p.Filename,
					line:      p.Line,
					analyzers: strings.Split(names, ","),
					reason:    reason,
				})
			}
		}
	}
	return out
}

// covers reports whether s suppresses a diagnostic from analyzer at
// file:line — same line as the marker, or the line directly below it (the
// marker-on-its-own-line form).
func (s *suppression) covers(analyzer, file string, line int) bool {
	if file != s.file || (line != s.line && line != s.line+1) {
		return false
	}
	for _, a := range s.analyzers {
		if a == analyzer {
			return true
		}
	}
	return false
}

// Run applies every analyzer to every package and returns the surviving
// findings sorted by position. Suppressed diagnostics are dropped;
// malformed and unused suppressions are appended as DriverName findings.
// Analyzers that need type information are skipped on parse-only packages.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		var diags []Diagnostic
		collect := func(d Diagnostic) { diags = append(diags, d) }
		sups := parseSuppressions(pkg, collect)
		ran := map[string]bool{}
		for _, a := range analyzers {
			if a.NeedsTypes && pkg.Info == nil {
				continue
			}
			ran[a.Name] = true
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				PkgPath:  pkg.PkgPath,
				report:   collect,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
		for _, d := range diags {
			p := pkg.Fset.Position(d.Pos)
			suppressed := false
			for _, s := range sups {
				if d.Analyzer != DriverName && s.covers(d.Analyzer, p.Filename, p.Line) {
					s.used = true
					suppressed = true
					break
				}
			}
			if !suppressed {
				findings = append(findings, Finding{Position: p, Analyzer: d.Analyzer, Message: d.Message})
			}
		}
		// A suppression that names an analyzer which ran but matched nothing
		// is stale: the code it excused has moved or been fixed. Markers for
		// analyzers outside this run (e.g. a single-analyzer test) are left
		// alone — only the full driver can judge those.
		for _, s := range sups {
			if s.used {
				continue
			}
			relevant := false
			for _, a := range s.analyzers {
				if ran[a] {
					relevant = true
				}
			}
			if relevant {
				findings = append(findings, Finding{
					Position: pkg.Fset.Position(s.pos),
					Analyzer: DriverName,
					Message:  fmt.Sprintf("unused suppression for %s: nothing on this or the next line triggers it", strings.Join(s.analyzers, ",")),
				})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
