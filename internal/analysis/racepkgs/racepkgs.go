// Package racepkgs is the race-coverage meta-check: it discovers which
// packages in the repository spawn goroutines (a `go` statement anywhere
// in their sources, tests included) and parses the CI workflow's race-job
// package list, so a test can fail when a concurrent package is missing
// from `go test -race`. PR 3's torn read and PR 6's silent durability loss
// were both bugs the race detector catches — but only in packages it
// actually runs against; this check keeps the list from silently rotting
// as new concurrent packages appear.
package racepkgs

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// SpawningPackages walks the module rooted at root and returns the
// packages containing at least one go statement, as "." / "./rel" paths
// (the form the CI race line uses). Vendored trees, testdata, and dot
// directories are skipped.
func SpawningPackages(root string) ([]string, error) {
	seen := map[string]bool{}
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if perr != nil {
			return fmt.Errorf("parse %s: %w", path, perr)
		}
		if !spawns(f) {
			return nil
		}
		rel, rerr := filepath.Rel(root, filepath.Dir(path))
		if rerr != nil {
			return rerr
		}
		if rel == "." {
			seen["."] = true
		} else {
			seen["./"+filepath.ToSlash(rel)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out, nil
}

// spawns reports whether the file contains a go statement.
func spawns(f *ast.File) bool {
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.GoStmt); ok {
			found = true
			return false
		}
		return true
	})
	return found
}

// RaceList parses the CI workflow at ciPath and returns the package
// patterns of the canonical race line — the `go test` invocation carrying
// both -race and -shuffle (targeted race runs like the soak step do not
// count as coverage; they filter with -run).
func RaceList(ciPath string) ([]string, error) {
	data, err := os.ReadFile(ciPath)
	if err != nil {
		return nil, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.Contains(line, "go test") ||
			!strings.Contains(line, "-race") ||
			!strings.Contains(line, "-shuffle") {
			continue
		}
		var pkgs []string
		for _, tok := range strings.Fields(line) {
			if tok == "." || strings.HasPrefix(tok, "./") {
				pkgs = append(pkgs, tok)
			}
		}
		if len(pkgs) == 0 {
			return nil, fmt.Errorf("race line in %s names no packages: %q", ciPath, strings.TrimSpace(line))
		}
		return pkgs, nil
	}
	return nil, fmt.Errorf("no `go test -race -shuffle` line found in %s", ciPath)
}
