package racepkgs

import (
	"os"
	"path/filepath"
	"testing"
)

// repoRoot is the module root relative to this package's directory.
var repoRoot = filepath.Join("..", "..", "..")

// ciPath is the CI workflow the race line lives in.
var ciPath = filepath.Join(repoRoot, ".github", "workflows", "ci.yml")

// TestRaceJobCoversGoroutineSpawners fails when a package that spawns
// goroutines is absent from the CI race line: concurrency without race
// coverage is how torn reads ship.
func TestRaceJobCoversGoroutineSpawners(t *testing.T) {
	spawning, err := SpawningPackages(repoRoot)
	if err != nil {
		t.Fatal(err)
	}
	if len(spawning) == 0 {
		t.Fatal("found no goroutine-spawning packages; the walker is broken")
	}
	race, err := RaceList(ciPath)
	if err != nil {
		t.Fatal(err)
	}
	covered := map[string]bool{}
	for _, p := range race {
		covered[p] = true
	}
	for _, p := range spawning {
		if !covered[p] {
			t.Errorf("%s spawns goroutines but is missing from the CI race line (.github/workflows/ci.yml); add it to `go test -race -shuffle=on ...`", p)
		}
	}
}

// TestRaceListEntriesExist guards the other direction: every pattern on
// the race line must still be a package directory, so renames cannot leave
// the race job silently testing nothing.
func TestRaceListEntriesExist(t *testing.T) {
	race, err := RaceList(ciPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range race {
		dir := filepath.Join(repoRoot, filepath.FromSlash(p))
		if st, err := os.Stat(dir); err != nil || !st.IsDir() {
			t.Errorf("race line entry %s is not a directory in the repo", p)
		}
	}
}
