package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parsePkg parses src as a single-file, parse-only package.
func parsePkg(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{PkgPath: "p", Dir: ".", Fset: fset, Files: []*ast.File{f}}
}

// probe reports one finding at every identifier named "target".
var probe = &Analyzer{
	Name: "probe",
	Doc:  "test probe",
	Run: func(p *Pass) error {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && id.Name == "target" {
					p.Reportf(id.Pos(), "probe hit")
				}
				return true
			})
		}
		return nil
	},
}

// run is a helper collapsing Run's output to message strings.
func runProbe(t *testing.T, src string) []string {
	t.Helper()
	findings, err := Run([]*Package{parsePkg(t, src)}, []*Analyzer{probe})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(findings))
	for i, f := range findings {
		out[i] = "[" + f.Analyzer + "] " + f.Message
	}
	return out
}

// TestRunReportsUnsuppressedFindings is the baseline: no markers, one
// finding per probe hit.
func TestRunReportsUnsuppressedFindings(t *testing.T) {
	got := runProbe(t, "package p\n\nvar target = 1\n")
	if len(got) != 1 || got[0] != "[probe] probe hit" {
		t.Fatalf("got %v, want one probe hit", got)
	}
}

// TestSuppressionCoversSameAndNextLine checks both sanctioned marker
// placements: trailing on the flagged line, and alone on the line above.
func TestSuppressionCoversSameAndNextLine(t *testing.T) {
	src := `package p

var target = 1 //annotlint:ignore probe trailing marker with a reason

//annotlint:ignore probe marker above the line, with a reason
var target2 = target
`
	if got := runProbe(t, src); len(got) != 0 {
		t.Fatalf("got %v, want no findings", got)
	}
}

// TestMalformedSuppressionIsReported checks the driver-enforced reason
// requirement: a marker without a reason (or without an analyzer list) is
// itself a finding, and it does not suppress anything.
func TestMalformedSuppressionIsReported(t *testing.T) {
	src := `package p

//annotlint:ignore probe
var target = 1
`
	got := runProbe(t, src)
	if len(got) != 2 {
		t.Fatalf("got %v, want malformed-suppression finding plus the unsuppressed probe hit", got)
	}
	if !strings.Contains(got[0], "[annotlint] malformed suppression") {
		t.Errorf("first finding = %q, want malformed suppression", got[0])
	}
	if got[1] != "[probe] probe hit" {
		t.Errorf("second finding = %q, want the probe hit to survive", got[1])
	}
}

// TestUnusedSuppressionIsReported checks that a marker whose analyzer ran
// but matched nothing is flagged as stale.
func TestUnusedSuppressionIsReported(t *testing.T) {
	src := `package p

//annotlint:ignore probe nothing here triggers probe
var clean = 1
`
	got := runProbe(t, src)
	if len(got) != 1 || !strings.Contains(got[0], "unused suppression for probe") {
		t.Fatalf("got %v, want one unused-suppression finding", got)
	}
}

// TestSuppressionForOtherAnalyzerIsLeftAlone checks that a marker naming
// an analyzer outside this run is neither honored nor reported stale —
// only the full driver can judge it.
func TestSuppressionForOtherAnalyzerIsLeftAlone(t *testing.T) {
	src := `package p

//annotlint:ignore otherlint handled by a different analyzer
var clean = 1
`
	if got := runProbe(t, src); len(got) != 0 {
		t.Fatalf("got %v, want no findings", got)
	}
}

// TestNeedsTypesSkipsParseOnlyPackages checks that a type-needing analyzer
// never sees a package without type information.
func TestNeedsTypesSkipsParseOnlyPackages(t *testing.T) {
	ranOn := []string{}
	typed := &Analyzer{
		Name:       "typed",
		Doc:        "records the packages it runs on",
		NeedsTypes: true,
		Run: func(p *Pass) error {
			ranOn = append(ranOn, p.PkgPath)
			return nil
		},
	}
	if _, err := Run([]*Package{parsePkg(t, "package p\n")}, []*Analyzer{typed}); err != nil {
		t.Fatal(err)
	}
	if len(ranOn) != 0 {
		t.Fatalf("typed analyzer ran on parse-only packages %v", ranOn)
	}
}
