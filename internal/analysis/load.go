package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// PkgPath is the import path.
	PkgPath string
	// Dir is the package's source directory.
	Dir string
	// Fset maps positions; shared across one Load call.
	Fset *token.FileSet
	// Files is the parsed syntax of the package's non-test Go files.
	Files []*ast.File
	// Types is the type-checked package, nil for parse-only loads.
	Types *types.Package
	// Info carries type facts for every expression in Files, nil for
	// parse-only loads.
	Info *types.Info
}

// listedPackage is the subset of `go list -json` output the loader reads.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` for patterns in dir and decodes
// the JSON stream. The -export flag makes the go tool compile (or pull from
// the build cache) every package and report the path of its export data,
// which is what lets the type checker import dependencies without
// re-checking their sources.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Dir,Export,GoFiles,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if derr := dec.Decode(&p); errors.Is(derr, io.EOF) {
			break
		} else if derr != nil {
			return nil, fmt.Errorf("analysis: decode go list output: %w", derr)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// ExportImporter is a types.Importer that resolves imports from the
// compiler export data `go list -export` reports, via the standard gc
// importer. It starts empty; Add extends it with the dependency closure of
// more patterns. The analysistest harness shares it so testdata packages
// can import anything the module's build graph provides without the loader
// re-type-checking the world from source.
type ExportImporter struct {
	gc      types.Importer
	exports map[string]string
}

// NewExportImporter returns an empty importer bound to fset.
func NewExportImporter(fset *token.FileSet) *ExportImporter {
	ei := &ExportImporter{exports: map[string]string{}}
	ei.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		e, ok := ei.exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(e)
	})
	return ei
}

// Add runs go list in dir for the given patterns and merges the resulting
// export-data locations (targets and dependencies alike) into the importer.
func (ei *ExportImporter) Add(dir string, patterns ...string) error {
	listed, err := goList(dir, patterns)
	if err != nil {
		return err
	}
	for _, p := range listed {
		if p.Error != nil {
			return fmt.Errorf("analysis: go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			ei.exports[p.ImportPath] = p.Export
		}
	}
	return nil
}

// Has reports whether export data for the import path is on hand.
func (ei *ExportImporter) Has(path string) bool {
	_, ok := ei.exports[path]
	return ok
}

// Import implements types.Importer.
func (ei *ExportImporter) Import(path string) (*types.Package, error) {
	return ei.gc.Import(path)
}

// Load lists patterns in module directory dir (e.g. "./..."), parses each
// matched package's non-test sources, and type-checks them against export
// data for every dependency. Packages that contain no buildable Go files
// (test-only packages such as internal/docs) are skipped. The returned
// packages share one FileSet and are sorted by import path.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := NewExportImporter(fset)
	var targets []listedPackage
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			imp.exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	sizes := types.SizesFor("gc", runtime.GOARCH)
	var out []*Package
	for _, t := range targets {
		files := make([]*ast.File, 0, len(t.GoFiles))
		for _, name := range t.GoFiles {
			f, perr := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if perr != nil {
				return nil, fmt.Errorf("analysis: parse %s: %w", name, perr)
			}
			files = append(files, f)
		}
		info := NewInfo()
		conf := types.Config{Importer: imp, Sizes: sizes}
		tpkg, terr := conf.Check(t.ImportPath, fset, files, info)
		if terr != nil {
			return nil, fmt.Errorf("analysis: type-check %s: %w", t.ImportPath, terr)
		}
		out = append(out, &Package{
			PkgPath: t.ImportPath,
			Dir:     t.Dir,
			Fset:    fset,
			Files:   files,
			Types:   tpkg,
			Info:    info,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

// NewInfo allocates a types.Info with every fact map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
