package correlate

import (
	"context"
	"sort"
	"sync/atomic"
	"time"

	"annotadb/internal/stream"
)

// DetectorOptions tune the churn-anomaly detector. The zero value applies
// the defaults noted per field.
type DetectorOptions struct {
	// Window is the churn-counting period (default 5s): per-family event
	// counts accumulate for one window, are judged against the EWMA
	// baseline at its close, then folded into the baseline.
	Window time.Duration
	// Threshold is the spike multiplier (default 4): a window whose count
	// exceeds Threshold × baseline is anomalous.
	Threshold float64
	// MinEvents is the absolute floor (default 4): windows below it never
	// alert, however small the baseline, so a quiet family's first
	// trickle of churn is not a spike.
	MinEvents uint64
	// Alpha is the EWMA smoothing factor in (0, 1] (default 0.3).
	Alpha float64
	// Shard is the broker shard slot anomaly events are published on
	// (0 unsharded; sharded brokers take them on slot 0 with seq 0 so
	// the seq vector is never perturbed).
	Shard int
	// MaxRelated caps the co-churn list carried by an anomaly (default 8).
	MaxRelated int
}

func (o DetectorOptions) withDefaults() DetectorOptions {
	if o.Window <= 0 {
		o.Window = 5 * time.Second
	}
	if o.Threshold <= 0 {
		o.Threshold = 4
	}
	if o.MinEvents == 0 {
		o.MinEvents = 4
	}
	if o.Alpha <= 0 || o.Alpha > 1 {
		o.Alpha = 0.3
	}
	if o.MaxRelated <= 0 {
		o.MaxRelated = 8
	}
	return o
}

// anomaly is one detected spike, before it becomes a stream event.
type anomaly struct {
	family   string
	count    uint64
	baseline float64
	related  []string
}

// tracker is the pure windowing state of the detector: per-family counts
// for the open window and EWMA baselines across closed windows. It is not
// safe for concurrent use; the detector goroutine owns it.
type tracker struct {
	opts     DetectorOptions
	counts   map[string]uint64
	baseline map[string]float64
}

func newTracker(opts DetectorOptions) *tracker {
	return &tracker{
		opts:     opts,
		counts:   make(map[string]uint64),
		baseline: make(map[string]float64),
	}
}

// observe counts one churn event for a family in the open window.
func (tr *tracker) observe(family string) { tr.counts[family]++ }

// roll closes the window: families spiking above the baseline become
// anomalies, every observed family's baseline absorbs its count, silent
// families' baselines decay toward zero, and the window counts reset.
// A family's first observed window only seeds its baseline — with no
// history there is nothing to deviate from.
func (tr *tracker) roll() []anomaly {
	var out []anomaly
	for fam, n := range tr.counts {
		base, seen := tr.baseline[fam]
		if seen && float64(n) > tr.opts.Threshold*base && n >= tr.opts.MinEvents {
			out = append(out, anomaly{
				family:   fam,
				count:    n,
				baseline: base,
				related:  tr.related(fam),
			})
		}
	}
	for fam, n := range tr.counts {
		if base, seen := tr.baseline[fam]; seen {
			tr.baseline[fam] = tr.opts.Alpha*float64(n) + (1-tr.opts.Alpha)*base
		} else {
			tr.baseline[fam] = float64(n)
		}
	}
	for fam := range tr.baseline {
		if _, churned := tr.counts[fam]; !churned {
			tr.baseline[fam] *= 1 - tr.opts.Alpha
		}
	}
	clear(tr.counts)
	sort.Slice(out, func(i, j int) bool { return out[i].family < out[j].family })
	return out
}

// related ranks the other families that churned in the same window — the
// anomaly's "what else changed" payload — by count descending, name
// ascending, capped at MaxRelated. A lone spike is nil, never an empty
// slice, so events compare identically before and after a durable
// round-trip (the log encoding elides empty lists).
func (tr *tracker) related(spiking string) []string {
	var fams []string
	for fam := range tr.counts {
		if fam != spiking {
			fams = append(fams, fam)
		}
	}
	sort.Slice(fams, func(i, j int) bool {
		if tr.counts[fams[i]] != tr.counts[fams[j]] {
			return tr.counts[fams[i]] > tr.counts[fams[j]]
		}
		return fams[i] < fams[j]
	})
	if len(fams) > tr.opts.MaxRelated {
		fams = fams[:tr.opts.MaxRelated]
	}
	return fams
}

// churnKinds are the event kinds the detector counts: rule churn only —
// never gap frames, and never its own churn_anomaly output, so the
// detector cannot feed back into itself.
var churnKinds = []stream.Kind{
	stream.KindAdded,
	stream.KindPromoted,
	stream.KindDemoted,
	stream.KindRetired,
	stream.KindConfidenceChanged,
}

// Detector subscribes to a broker's rule-churn stream, tracks per-family
// churn rates against an EWMA baseline, and publishes churn_anomaly events
// back into the same broker. Stop it before closing the broker.
type Detector struct {
	broker    *stream.Broker
	opts      DetectorOptions
	seqFn     func() uint64
	cancel    context.CancelFunc
	done      chan struct{}
	anomalies atomic.Uint64
}

// StartDetector subscribes to broker and starts the detection goroutine.
// seqFn supplies the serving generation to stamp on emitted events (nil
// stamps 0, which sharded brokers require so the seq vector is never
// perturbed by a non-shard publisher).
func StartDetector(broker *stream.Broker, opts DetectorOptions, seqFn func() uint64) (*Detector, error) {
	opts = opts.withDefaults()
	if seqFn == nil {
		seqFn = func() uint64 { return 0 }
	}
	ctx, cancel := context.WithCancel(context.Background())
	sub, err := broker.Subscribe(ctx, stream.SubscribeOptions{Kinds: churnKinds})
	if err != nil {
		cancel()
		return nil, err
	}
	d := &Detector{
		broker: broker,
		opts:   opts,
		seqFn:  seqFn,
		cancel: cancel,
		done:   make(chan struct{}),
	}
	go d.run(ctx, sub)
	return d, nil
}

func (d *Detector) run(ctx context.Context, sub *stream.Subscription) {
	defer close(d.done)
	tr := newTracker(d.opts)
	ticker := time.NewTicker(d.opts.Window)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case ev, ok := <-sub.Events:
			if !ok {
				return
			}
			if ev.Kind != stream.KindGap && ev.Family != "" {
				tr.observe(ev.Family)
			}
		case <-ticker.C:
			for _, a := range tr.roll() {
				ev := stream.Event{
					Kind:         stream.KindChurnAnomaly,
					Family:       a.family,
					WindowMillis: d.opts.Window.Milliseconds(),
					Count:        a.count,
					Baseline:     a.baseline,
					Related:      a.related,
				}
				if err := d.broker.Publish(d.opts.Shard, d.seqFn(), []stream.Event{ev}); err != nil {
					return
				}
				d.anomalies.Add(1)
			}
		}
	}
}

// Anomalies returns the number of churn_anomaly events emitted so far.
func (d *Detector) Anomalies() uint64 { return d.anomalies.Load() }

// Stop terminates the detection goroutine and waits for it to exit. It is
// idempotent and must run before the broker closes.
func (d *Detector) Stop() {
	d.cancel()
	<-d.done
}
