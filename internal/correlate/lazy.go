package correlate

import (
	"sync"

	"annotadb/internal/relation"
)

// Lazy is the per-snapshot correlate index cache: one allocated per
// published generation, filled by the first query against that generation.
// Because the serving layer swaps in a fresh snapshot (and with it a fresh
// Lazy) at every publish, invalidation needs no machinery at all — an old
// generation's index is simply unreachable once its snapshot is.
type Lazy struct {
	once sync.Once
	idx  *Index
}

// Get returns the generation's index, building it from view on first use.
// built reports whether this call performed the build — the signal the
// facade's index-build counter wants.
func (l *Lazy) Get(view *relation.View) (idx *Index, built bool) {
	l.once.Do(func() {
		l.idx = NewIndex(view)
		built = true
	})
	return l.idx, built
}
