package correlate

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"annotadb/internal/relation"
)

func TestParseQuery(t *testing.T) {
	cases := []struct {
		name               string
		anchor, k, minLift string
		want               Query
		wantErr            bool
	}{
		{name: "defaults", anchor: "cpu:high", want: Query{Anchor: "cpu:high", K: DefaultK, MinLift: DefaultMinLift}},
		{name: "explicit", anchor: "a", k: "3", minLift: "1.5", want: Query{Anchor: "a", K: 3, MinLift: 1.5}},
		{name: "zero lift disables the floor", anchor: "a", minLift: "0", want: Query{Anchor: "a", K: DefaultK, MinLift: 0}},
		{name: "max k", anchor: "a", k: "1000", want: Query{Anchor: "a", K: MaxK, MinLift: DefaultMinLift}},
		{name: "missing anchor", wantErr: true},
		{name: "k zero", anchor: "a", k: "0", wantErr: true},
		{name: "k negative", anchor: "a", k: "-1", wantErr: true},
		{name: "k over max", anchor: "a", k: "1001", wantErr: true},
		{name: "k garbage", anchor: "a", k: "ten", wantErr: true},
		{name: "min_lift negative", anchor: "a", minLift: "-0.5", wantErr: true},
		{name: "min_lift nan", anchor: "a", minLift: "NaN", wantErr: true},
		{name: "min_lift inf", anchor: "a", minLift: "Inf", wantErr: true},
		{name: "min_lift garbage", anchor: "a", minLift: "much", wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ParseQuery(tc.anchor, tc.k, tc.minLift)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("ParseQuery(%q, %q, %q) = %+v, want error", tc.anchor, tc.k, tc.minLift, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseQuery(%q, %q, %q): %v", tc.anchor, tc.k, tc.minLift, err)
			}
			if got != tc.want {
				t.Fatalf("ParseQuery(%q, %q, %q) = %+v, want %+v", tc.anchor, tc.k, tc.minLift, got, tc.want)
			}
		})
	}
}

// randomRelation builds a relation with skewed annotation placement: a pool
// of families × levels, each annotation attached to a random subset of
// tuples, plus repeated data values so data anchors have real postings.
func randomRelation(rng *rand.Rand, n int) *relation.Relation {
	rel := relation.New()
	dict := rel.Dictionary()
	annots := []string{
		"cpu:high", "cpu:low", "mem:high", "mem:low",
		"io:slow", "io:fast", "net:sat", "disk:full", "oom:kill", "plain",
	}
	for i := 0; i < n; i++ {
		data := []string{fmt.Sprintf("host=h%d", rng.Intn(8)), fmt.Sprintf("img=i%d", rng.Intn(4))}
		var attach []string
		for _, a := range annots {
			if rng.Float64() < 0.25 {
				attach = append(attach, a)
			}
		}
		rel.Append(relation.MustTuple(dict, data, attach))
	}
	return rel
}

// TestTopKMatchesBruteForce is the equivalence property: the cached-index
// answer equals the O(N·M) no-derived-structure recomputation, for data and
// annotation anchors across random relations, ks, and lift floors.
func TestTopKMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 20; round++ {
		rel := randomRelation(rng, 50+rng.Intn(200))
		view := rel.View()
		idx := NewIndex(view)
		anchors := []string{"cpu:high", "mem:low", "oom:kill", "host=h1", "img=i2", "plain"}
		for _, anchor := range anchors {
			q := Query{Anchor: anchor, K: 1 + rng.Intn(12), MinLift: []float64{0, 1, 1.2}[rng.Intn(3)]}
			got, gotErr := idx.TopK(q)
			want, wantErr := BruteForce(view, q)
			if (gotErr != nil) != (wantErr != nil) {
				t.Fatalf("round %d anchor %q: TopK err %v, BruteForce err %v", round, anchor, gotErr, wantErr)
			}
			if gotErr != nil {
				if !errors.Is(gotErr, ErrUnknownAnchor) {
					t.Fatalf("round %d anchor %q: unexpected error %v", round, anchor, gotErr)
				}
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d anchor %q k=%d minLift=%v:\n index: %+v\n brute: %+v",
					round, anchor, q.K, q.MinLift, got, want)
			}
		}
	}
}

func TestTopKUnknownAnchor(t *testing.T) {
	rel := relation.New()
	dict := rel.Dictionary()
	rel.Append(relation.MustTuple(dict, []string{"v1"}, []string{"a:x"}))
	idx := NewIndex(rel.View())
	if _, err := idx.TopK(Query{Anchor: "never-seen", K: 5, MinLift: 1}); !errors.Is(err, ErrUnknownAnchor) {
		t.Fatalf("unknown token: got %v, want ErrUnknownAnchor", err)
	}
	if _, err := BruteForce(rel.View(), Query{Anchor: "never-seen", K: 5, MinLift: 1}); !errors.Is(err, ErrUnknownAnchor) {
		t.Fatalf("brute force unknown token: got %v, want ErrUnknownAnchor", err)
	}
}

// plantedRelation builds the significance golden fixture: 500 tuples where
// sched:throttle genuinely follows cpu:high (co 90 of 100) while net:sat has
// the exact same support (100) but is spread independently, so its overlap
// with the anchor (20) is precisely the product of the margins.
func plantedRelation() *relation.Relation {
	rel := relation.New()
	dict := rel.Dictionary()
	for i := 0; i < 500; i++ {
		src := "src=b"
		if i < 100 {
			src = "src=a"
		}
		var attach []string
		if i < 100 {
			attach = append(attach, "cpu:high")
		}
		if i < 90 || (i >= 100 && i < 110) {
			attach = append(attach, "sched:throttle")
		}
		if i%5 == 0 {
			attach = append(attach, "net:sat")
		}
		rel.Append(relation.MustTuple(dict, []string{src, fmt.Sprintf("row=%d", i)}, attach))
	}
	return rel
}

// TestSignificanceGolden checks the planted correlation beats equal-support
// noise: both candidates have support 100, but only the dependent one passes
// the chi-square filter — the reason the filter exists.
func TestSignificanceGolden(t *testing.T) {
	idx := NewIndex(plantedRelation().View())
	for _, anchor := range []string{"cpu:high", "src=a"} {
		ans, err := idx.TopK(Query{Anchor: anchor, K: 10, MinLift: 1})
		if err != nil {
			t.Fatalf("TopK(%q): %v", anchor, err)
		}
		if ans.AnchorCount != 100 || ans.N != 500 {
			t.Fatalf("TopK(%q): anchor count %d / n %d, want 100 / 500", anchor, ans.AnchorCount, ans.N)
		}
		var planted *Result
		for i := range ans.Results {
			switch ans.Results[i].Token {
			case "sched:throttle":
				planted = &ans.Results[i]
			case "net:sat":
				t.Fatalf("TopK(%q): independent equal-support noise survived the significance filter: %+v",
					anchor, ans.Results[i])
			}
		}
		if planted == nil {
			t.Fatalf("TopK(%q): planted correlation missing from %+v", anchor, ans.Results)
		}
		if planted.Count != 90 || planted.Frequency != 100 {
			t.Fatalf("TopK(%q): planted counts %d/%d, want 90/100", anchor, planted.Count, planted.Frequency)
		}
		if math.Abs(planted.Confidence-0.9) > 1e-12 || math.Abs(planted.Lift-4.5) > 1e-12 {
			t.Fatalf("TopK(%q): planted confidence %v lift %v, want 0.9 / 4.5", anchor, planted.Confidence, planted.Lift)
		}
		if planted.ChiSquare < ChiSquareCutoff || planted.PValue > 0.05 {
			t.Fatalf("TopK(%q): planted chi2 %v p %v should clear the cutoff", anchor, planted.ChiSquare, planted.PValue)
		}
		if planted.Family != "sched" {
			t.Fatalf("TopK(%q): planted family %q, want sched", anchor, planted.Family)
		}
	}
	// The noise IS reachable with the filters off: prove the filter, not the
	// candidate enumeration, is what removed it.
	ans, err := idx.TopK(Query{Anchor: "cpu:high", K: 100, MinLift: 0})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range ans.Results {
		found = found || r.Token == "net:sat"
	}
	if found {
		// net:sat has chi2 == 0 < cutoff, so even minLift 0 keeps it out;
		// it must only appear through BruteForce's pre-filter counting.
		t.Fatalf("net:sat passed the significance filter: %+v", ans.Results)
	}
}

// shardedFixture splits plantedRelation by annotation family across two
// "shards" that share tuple positions: every shard holds every tuple's data
// values, each family's annotations live on exactly one shard — the sharded
// store's contract TopKMerged leans on.
func shardedFixture(t *testing.T) (merged *relation.View, shards []*Index) {
	t.Helper()
	full := plantedRelation()
	famShard := map[string]int{"cpu": 0, "net": 0, "sched": 1}
	rels := []*relation.Relation{relation.New(), relation.New()}
	full.View().Each(func(i int, tu relation.Tuple) bool {
		dict := full.Dictionary()
		var data []string
		for _, it := range tu.Data {
			data = append(data, dict.Token(it))
		}
		annots := make([][]string, len(rels))
		for _, a := range tu.Annots {
			token := dict.Token(a)
			s := famShard[familyOf(token)]
			annots[s] = append(annots[s], token)
		}
		for s, rel := range rels {
			rel.Append(relation.MustTuple(rel.Dictionary(), data, annots[s]))
		}
		return true
	})
	shards = []*Index{NewIndex(rels[0].View()), NewIndex(rels[1].View())}
	return full.View(), shards
}

// TestTopKMergedMatchesUnsharded: the position-aligned shard merge must be
// indistinguishable from querying one unsharded relation holding the union,
// for anchors living on either shard and for data anchors living on both.
func TestTopKMergedMatchesUnsharded(t *testing.T) {
	mergedView, shards := shardedFixture(t)
	unsharded := NewIndex(mergedView)
	for _, anchor := range []string{"cpu:high", "sched:throttle", "net:sat", "src=a"} {
		for _, minLift := range []float64{0, 1} {
			q := Query{Anchor: anchor, K: 20, MinLift: minLift}
			want, wantErr := unsharded.TopK(q)
			got, gotErr := TopKMerged(shards, q)
			if (gotErr != nil) != (wantErr != nil) {
				t.Fatalf("anchor %q: merged err %v, unsharded err %v", anchor, gotErr, wantErr)
			}
			if gotErr != nil {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("anchor %q minLift %v:\n merged:    %+v\n unsharded: %+v", anchor, minLift, got, want)
			}
		}
	}
	if _, err := TopKMerged(shards, Query{Anchor: "nope", K: 5, MinLift: 1}); !errors.Is(err, ErrUnknownAnchor) {
		t.Fatalf("merged unknown anchor: got %v, want ErrUnknownAnchor", err)
	}
	if _, err := TopKMerged(nil, Query{Anchor: "cpu:high", K: 5, MinLift: 1}); !errors.Is(err, ErrUnknownAnchor) {
		t.Fatalf("merged with no shards: got %v, want ErrUnknownAnchor", err)
	}
}

// TestTopKMergedClampsRaggedShards: shards whose tuple counts diverge (one
// shard's writer ahead of the other) must be merged at the shortest prefix,
// matching an unsharded relation truncated to that length.
func TestTopKMergedClampsRaggedShards(t *testing.T) {
	_, shards := shardedFixture(t)
	// Extend shard 0 by 40 tuples the other shard has not seen yet.
	longer := relation.New()
	shards[0].View().Each(func(_ int, tu relation.Tuple) bool {
		dict := shards[0].View().Dictionary()
		var data, annots []string
		for _, it := range tu.Data {
			data = append(data, dict.Token(it))
		}
		for _, a := range tu.Annots {
			annots = append(annots, dict.Token(a))
		}
		longer.Append(relation.MustTuple(longer.Dictionary(), data, annots))
		return true
	})
	for i := 0; i < 40; i++ {
		longer.Append(relation.MustTuple(longer.Dictionary(),
			[]string{"src=a", fmt.Sprintf("extra=%d", i)}, []string{"cpu:high", "net:sat"}))
	}
	ragged := []*Index{NewIndex(longer.View()), shards[1]}
	q := Query{Anchor: "cpu:high", K: 20, MinLift: 0}
	got, err := TopKMerged(ragged, q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := TopKMerged(shards, q)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 500 || got.AnchorCount != want.AnchorCount {
		t.Fatalf("ragged merge: n %d anchor %d, want n 500 anchor %d", got.N, got.AnchorCount, want.AnchorCount)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ragged merge diverged from aligned merge:\n ragged:  %+v\n aligned: %+v", got, want)
	}
}

func TestLazyBuildsOnce(t *testing.T) {
	view := plantedRelation().View()
	var l Lazy
	idx1, built1 := l.Get(view)
	idx2, built2 := l.Get(view)
	if !built1 || built2 {
		t.Fatalf("built flags = %v, %v; want true, false", built1, built2)
	}
	if idx1 != idx2 {
		t.Fatal("Lazy handed out two different indexes for one generation")
	}
}

func FuzzParseCorrelateQuery(f *testing.F) {
	f.Add("cpu:high", "10", "1.0")
	f.Add("", "", "")
	f.Add("a", "-3", "NaN")
	f.Add("img=i0", "1001", "-1")
	f.Add("x", "999999999999999999999", "1e309")
	f.Fuzz(func(t *testing.T, anchor, k, minLift string) {
		q, err := ParseQuery(anchor, k, minLift)
		if err != nil {
			return
		}
		if q.Anchor != anchor || q.Anchor == "" {
			t.Fatalf("accepted query lost its anchor: %+v from (%q, %q, %q)", q, anchor, k, minLift)
		}
		if q.K < 1 || q.K > MaxK {
			t.Fatalf("accepted k %d outside [1, %d]", q.K, MaxK)
		}
		if math.IsNaN(q.MinLift) || math.IsInf(q.MinLift, 0) || q.MinLift < 0 {
			t.Fatalf("accepted min_lift %v is not a finite non-negative number", q.MinLift)
		}
	})
}

func BenchmarkCorrelateTopK(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	rel := randomRelation(rng, 5000)
	idx := NewIndex(rel.View())
	q := Query{Anchor: "cpu:high", K: DefaultK, MinLift: DefaultMinLift}
	if _, err := idx.TopK(q); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.TopK(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCorrelateIndexBuild is the cost a generation's first query pays.
func BenchmarkCorrelateIndexBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	view := randomRelation(rng, 5000).View()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewIndex(view)
	}
}
