package correlate

import (
	"context"
	"reflect"
	"testing"
	"time"

	"annotadb/internal/stream"
)

func testOpts() DetectorOptions {
	return DetectorOptions{Threshold: 4, MinEvents: 4, Alpha: 0.5, MaxRelated: 2}.withDefaults()
}

func observeN(tr *tracker, family string, n int) {
	for i := 0; i < n; i++ {
		tr.observe(family)
	}
}

func TestTrackerFirstWindowOnlySeeds(t *testing.T) {
	tr := newTracker(testOpts())
	observeN(tr, "cpu", 100)
	if got := tr.roll(); len(got) != 0 {
		t.Fatalf("first window alerted: %+v", got)
	}
	if tr.baseline["cpu"] != 100 {
		t.Fatalf("baseline after seed = %v, want 100", tr.baseline["cpu"])
	}
}

func TestTrackerSpikeAlerts(t *testing.T) {
	tr := newTracker(testOpts())
	observeN(tr, "cpu", 2)
	observeN(tr, "mem", 5)
	tr.roll()
	// 20 > 4×2 and ≥ MinEvents: anomaly against the window-1 baseline. mem
	// churns 3 in the same window (no alert: 3 < 4×5) and rides along as
	// the co-churned family.
	observeN(tr, "cpu", 20)
	observeN(tr, "mem", 3)
	got := tr.roll()
	want := []anomaly{{family: "cpu", count: 20, baseline: 2, related: []string{"mem"}}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("roll() = %+v, want %+v", got, want)
	}
	// EWMA fold (alpha 0.5): cpu 0.5×20 + 0.5×2 = 11; mem 0.5×3 + 0.5×5 = 4.
	if tr.baseline["cpu"] != 11 || tr.baseline["mem"] != 4 {
		t.Fatalf("baselines after fold = %v, want cpu 11 mem 4", tr.baseline)
	}
}

func TestTrackerMinEventsFloor(t *testing.T) {
	tr := newTracker(testOpts())
	observeN(tr, "io", 1)
	tr.roll()
	// 3 > 4×0.5 (the decayed baseline) but 3 < MinEvents: a quiet family's
	// trickle is not a spike.
	tr.roll() // silent window decays io's baseline to 0.5
	observeN(tr, "io", 3)
	if got := tr.roll(); len(got) != 0 {
		t.Fatalf("sub-floor window alerted: %+v", got)
	}
}

func TestTrackerSilentDecay(t *testing.T) {
	tr := newTracker(testOpts())
	observeN(tr, "net", 8)
	tr.roll()
	tr.roll()
	tr.roll()
	if got := tr.baseline["net"]; got != 2 { // 8 × 0.5 × 0.5
		t.Fatalf("baseline after two silent windows = %v, want 2", got)
	}
}

func TestTrackerRelatedRankedAndCapped(t *testing.T) {
	tr := newTracker(testOpts()) // MaxRelated 2
	for _, fam := range []string{"b", "c", "d"} {
		observeN(tr, fam, 2)
	}
	observeN(tr, "a", 4)
	tr.roll()
	// Only a spikes (40 > 4×4); b/c/d churn along below their 4×2 = 8
	// thresholds and become the related list.
	observeN(tr, "a", 40)
	observeN(tr, "b", 7)
	observeN(tr, "c", 6)
	observeN(tr, "d", 8)
	got := tr.roll()
	if len(got) != 1 || got[0].family != "a" {
		t.Fatalf("roll() = %+v, want one anomaly for a", got)
	}
	// Count descending, name ascending on ties, capped at MaxRelated.
	if want := []string{"d", "b"}; !reflect.DeepEqual(got[0].related, want) {
		t.Fatalf("related = %v, want %v", got[0].related, want)
	}
}

func TestTrackerMultipleSpikesSortedByFamily(t *testing.T) {
	tr := newTracker(testOpts())
	observeN(tr, "z", 1)
	observeN(tr, "a", 1)
	tr.roll()
	observeN(tr, "z", 10)
	observeN(tr, "a", 10)
	got := tr.roll()
	if len(got) != 2 || got[0].family != "a" || got[1].family != "z" {
		t.Fatalf("roll() = %+v, want [a, z]", got)
	}
}

// TestDetectorEmitsChurnAnomaly drives the full pipeline: rule-churn events
// published into a broker, the detector windowing them, and a churn_anomaly
// event coming back out of the same broker with the payload fields set.
func TestDetectorEmitsChurnAnomaly(t *testing.T) {
	b := stream.NewBroker(stream.Options{Ring: 4096})
	defer b.Close()

	d, err := StartDetector(b, DetectorOptions{
		Window:    20 * time.Millisecond,
		Threshold: 2,
		MinEvents: 4,
	}, func() uint64 { return 77 })
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	sub, err := b.Subscribe(ctx, stream.SubscribeOptions{Kinds: []stream.Kind{stream.KindChurnAnomaly}})
	if err != nil {
		t.Fatal(err)
	}

	churn := func(n int) {
		evs := make([]stream.Event, n)
		for i := range evs {
			evs[i] = stream.Event{Kind: stream.KindPromoted, Tier: stream.TierValid, Family: "cpu", RHS: "cpu:high"}
		}
		if err := b.Publish(0, 1, evs); err != nil {
			t.Fatal(err)
		}
	}

	// Seed a small baseline and let several windows roll so "cpu" is a
	// known family with a tiny (decaying) baseline, then burst every tick.
	// The first window made wholly of bursts counts ≥ 40 against a
	// baseline ≤ 4, clearing threshold 2 and MinEvents 4 — wall-clock
	// windows blur which window that is, not whether one alerts.
	churn(4)
	time.Sleep(150 * time.Millisecond)
	ticker := time.NewTicker(5 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			t.Fatal("no churn_anomaly before timeout")
		case ev := <-sub.Events:
			if ev.Kind != stream.KindChurnAnomaly {
				t.Fatalf("subscription filtered to churn_anomaly delivered %q", ev.Kind)
			}
			if ev.Family != "cpu" {
				t.Fatalf("anomaly family %q, want cpu", ev.Family)
			}
			if ev.WindowMillis != 20 || ev.Count == 0 || ev.Baseline <= 0 {
				t.Fatalf("anomaly payload incomplete: %+v", ev)
			}
			if ev.Seq != 77 {
				t.Fatalf("anomaly seq %d, want the seqFn value 77", ev.Seq)
			}
			if d.Anomalies() == 0 {
				t.Fatal("detector emitted an anomaly but counts zero")
			}
			d.Stop()
			d.Stop() // idempotent
			return
		case <-ticker.C:
			churn(40)
		}
	}
}

// TestDetectorIgnoresItsOwnOutput: anomalies carry no rule family churn —
// the detector subscribes to rule kinds only, so a stream full of
// churn_anomaly events (or gaps) never feeds back into the tracker.
func TestDetectorIgnoresItsOwnOutput(t *testing.T) {
	b := stream.NewBroker(stream.Options{Ring: 64})
	defer b.Close()
	d, err := StartDetector(b, DetectorOptions{Window: 10 * time.Millisecond, Threshold: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()
	for i := 0; i < 50; i++ {
		if err := b.Publish(0, 0, []stream.Event{{Kind: stream.KindChurnAnomaly, Family: "cpu", Count: 99}}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(60 * time.Millisecond)
	if got := d.Anomalies(); got != 0 {
		t.Fatalf("detector fed back on its own output: %d anomalies", got)
	}
}
