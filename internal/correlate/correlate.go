// Package correlate is the correlation-discovery subsystem: top-K anchor
// queries and churn-anomaly detection over the serving layer's immutable
// snapshots.
//
// Anchor discovery answers "which annotations move with this token?": given
// an anchor (an annotation or a data value), it ranks every co-occurring
// annotation by confidence and lift, keeping only candidates that pass a
// chi-square independence test (p ≤ 0.05, following Chanda et al.,
// "Statistically Significant Attribute Association Information") so that
// high-support noise cannot crowd out genuinely associated annotations. All
// counts come from one frozen relation.View generation — the paper's §4.3
// annotation inverted index and frequency table — so a query takes zero
// engine locks. An Index caches the one derived structure a View lacks (the
// data-value inverted index) and is itself cached per snapshot generation by
// Lazy, built on the first query and dropped wholesale at the next publish.
//
// Churn-anomaly detection (detector.go) watches the rule-churn event stream
// for per-family spikes against an EWMA baseline and publishes them back
// into the stream as churn_anomaly events, so anomaly history rides the same
// durable, cursor-resumable machinery as rule churn itself.
package correlate

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"

	"annotadb/internal/itemset"
	"annotadb/internal/relation"
)

// ErrUnknownAnchor reports an anchor token with no occurrence in the
// queried generation — never interned, or interned but absent from every
// tuple the snapshot can see.
var ErrUnknownAnchor = errors.New("correlate: anchor token has no occurrences in this generation")

// ChiSquareCutoff is the chi-square critical value at one degree of freedom
// for p = 0.05: candidates below it are statistically indistinguishable
// from independence and are filtered out.
const ChiSquareCutoff = 3.841

const (
	// DefaultK is the result cap applied when a query leaves k unset.
	DefaultK = 10
	// MaxK bounds the result cap a query may request.
	MaxK = 1000
	// DefaultMinLift is the lift floor applied when a query leaves
	// min_lift unset: lift > 1 means positive association, so the default
	// keeps exactly the positively associated candidates.
	DefaultMinLift = 1.0
)

// Query is one parsed /correlate request.
type Query struct {
	// Anchor is the anchor token (an annotation or a data value).
	Anchor string
	// K caps the result count (DefaultK when the request left it unset).
	K int
	// MinLift is the lift floor (DefaultMinLift when unset).
	MinLift float64
}

// ParseQuery validates the raw /correlate query parameters. anchor is
// required; k and minLift are the raw strings of the optional parameters
// ("" applies the default).
func ParseQuery(anchor, k, minLift string) (Query, error) {
	q := Query{Anchor: anchor, K: DefaultK, MinLift: DefaultMinLift}
	if anchor == "" {
		return Query{}, errors.New("correlate: anchor is required")
	}
	if k != "" {
		v, err := strconv.Atoi(k)
		if err != nil {
			return Query{}, fmt.Errorf("correlate: bad k %q: %w", k, err)
		}
		if v < 1 || v > MaxK {
			return Query{}, fmt.Errorf("correlate: k %d out of range [1, %d]", v, MaxK)
		}
		q.K = v
	}
	if minLift != "" {
		v, err := strconv.ParseFloat(minLift, 64)
		if err != nil {
			return Query{}, fmt.Errorf("correlate: bad min_lift %q: %w", minLift, err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return Query{}, fmt.Errorf("correlate: min_lift %v must be a finite non-negative number", v)
		}
		q.MinLift = v
	}
	return q, nil
}

// Result is one ranked candidate annotation.
type Result struct {
	// Token is the candidate annotation's dictionary token; Family its
	// annotation family (the prefix before the first ":").
	Token  string `json:"token"`
	Family string `json:"family"`
	// Count is the anchor∧candidate co-occurrence count; Frequency the
	// candidate's own occurrence count in the generation.
	Count     int `json:"count"`
	Frequency int `json:"frequency"`
	// Confidence is Count / anchor count; Lift is the observed-over-
	// expected co-occurrence ratio (> 1 means positive association).
	Confidence float64 `json:"confidence"`
	Lift       float64 `json:"lift"`
	// ChiSquare and PValue are the independence-test statistics (one
	// degree of freedom) the significance filter cut on.
	ChiSquare float64 `json:"chi_square"`
	PValue    float64 `json:"p_value"`
}

// Answer is the response to one anchor query.
type Answer struct {
	// Anchor echoes the anchor token; AnchorCount is its occurrence count
	// in the generation; N the generation's tuple count.
	Anchor      string `json:"anchor"`
	AnchorCount int    `json:"anchor_count"`
	N           int    `json:"n"`
	// Results are the significance-filtered top-K candidates, ranked by
	// confidence then lift (descending), token ascending on ties.
	Results []Result `json:"results"`
}

// Index is the per-generation correlate index over one frozen View: the
// data-value inverted index the relation itself does not maintain (the
// paper's §4.3 index covers annotations only). Everything else a query
// needs — annotation postings, frequencies, N — is served straight from
// the View. An Index is immutable after NewIndex and safe for concurrent
// queries.
type Index struct {
	view *relation.View
	n    int
	// dataPostings maps each data-value item to the ascending tuple
	// positions containing it, mirroring View.TuplesWith for annotations.
	dataPostings map[itemset.Item][]int
}

// NewIndex builds the index with one O(N) scan over the view.
func NewIndex(view *relation.View) *Index {
	idx := &Index{
		view:         view,
		n:            view.Len(),
		dataPostings: make(map[itemset.Item][]int),
	}
	view.Each(func(i int, t relation.Tuple) bool {
		for _, it := range t.Data {
			idx.dataPostings[it] = append(idx.dataPostings[it], i)
		}
		return true
	})
	return idx
}

// View returns the frozen generation the index was built over.
func (idx *Index) View() *relation.View { return idx.view }

// N returns the tuple count of the indexed generation.
func (idx *Index) N() int { return idx.n }

// anchorPostings resolves an anchor token to its ascending tuple positions
// in this generation, or ErrUnknownAnchor.
func (idx *Index) anchorPostings(token string) ([]int, error) {
	it, ok := idx.view.Dictionary().Lookup(token)
	if !ok {
		return nil, ErrUnknownAnchor
	}
	if it.IsData() {
		if p := idx.dataPostings[it]; len(p) > 0 {
			return p, nil
		}
		return nil, ErrUnknownAnchor
	}
	if p := idx.view.TuplesWith(it); len(p) > 0 {
		return p, nil
	}
	return nil, ErrUnknownAnchor
}

// score computes the association statistics of one candidate against the
// anchor: co co-occurrences, anchor frequency freqA, candidate frequency
// freqC, over n tuples. The chi-square statistic is the standard 2×2
// contingency form N(ad−bc)²/((a+b)(c+d)(a+c)(b+d)); its p-value at one
// degree of freedom is erfc(√(χ²/2)).
func score(co, freqA, freqC, n int) (confidence, lift, chi2, p float64) {
	confidence = float64(co) / float64(freqA)
	lift = float64(co) * float64(n) / (float64(freqA) * float64(freqC))
	a := float64(co)
	b := float64(freqA - co)
	c := float64(freqC - co)
	d := float64(n - freqA - freqC + co)
	denom := (a + b) * (c + d) * (a + c) * (b + d)
	if denom <= 0 {
		// A degenerate margin (anchor or candidate in every tuple, or in
		// none) carries no independence information; treat it as maximally
		// dependent so ubiquity alone never hides a perfect association.
		chi2 = math.Inf(1)
		p = 0
		return
	}
	chi2 = float64(n) * (a*d - b*c) * (a*d - b*c) / denom
	p = math.Erfc(math.Sqrt(chi2 / 2))
	return
}

// rank sorts results by confidence descending, lift descending, token
// ascending, and truncates to k. An empty answer is always nil, whatever
// the caller accumulated into, so answers compare with reflect.DeepEqual.
func rank(results []Result, k int) []Result {
	if len(results) == 0 {
		return nil
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Confidence != results[j].Confidence {
			return results[i].Confidence > results[j].Confidence
		}
		if results[i].Lift != results[j].Lift {
			return results[i].Lift > results[j].Lift
		}
		return results[i].Token < results[j].Token
	})
	if len(results) > k {
		results = results[:k]
	}
	return results
}

// TopK answers an anchor query from this index: candidates are every
// annotation co-occurring with the anchor, scored from the frozen
// frequency and co-occurrence counts, significance-filtered, and ranked.
func (idx *Index) TopK(q Query) (Answer, error) {
	postings, err := idx.anchorPostings(q.Anchor)
	if err != nil {
		return Answer{}, err
	}
	counts := make(map[itemset.Item]int)
	for _, p := range postings {
		t, terr := idx.view.Tuple(p)
		if terr != nil {
			return Answer{}, terr
		}
		for _, a := range t.Annots {
			counts[a]++
		}
	}
	dict := idx.view.Dictionary()
	results := make([]Result, 0, len(counts))
	for cand, co := range counts {
		token := dict.Token(cand)
		if token == q.Anchor {
			continue
		}
		results = append(results, scoreCandidate(token, co, len(postings), idx.view.Frequency(cand), idx.n, q.MinLift)...)
	}
	return Answer{
		Anchor:      q.Anchor,
		AnchorCount: len(postings),
		N:           idx.n,
		Results:     rank(results, q.K),
	}, nil
}

// scoreCandidate scores one candidate and applies the significance and
// lift filters, returning zero or one results.
func scoreCandidate(token string, co, freqA, freqC, n int, minLift float64) []Result {
	confidence, lift, chi2, p := score(co, freqA, freqC, n)
	if chi2 < ChiSquareCutoff || lift < minLift {
		return nil
	}
	return []Result{{
		Token:      token,
		Family:     familyOf(token),
		Count:      co,
		Frequency:  freqC,
		Confidence: confidence,
		Lift:       lift,
		ChiSquare:  chi2,
		PValue:     p,
	}}
}

// familyOf extracts the annotation family from a token: the prefix before
// the first ":", or the whole token (the stream package's placement rule).
func familyOf(token string) string {
	for i := 0; i < len(token); i++ {
		if token[i] == ':' {
			return token[:i]
		}
	}
	return token
}

// clampBelow returns the prefix of ascending positions strictly below n.
func clampBelow(postings []int, n int) []int {
	i := sort.SearchInts(postings, n)
	return postings[:i]
}

// TopKMerged answers an anchor query across per-shard indexes, merging at
// the generations the indexes were captured at. The sharded store keeps
// every tuple's data values on every shard in identical positions while
// each annotation family lives on exactly one shard, so the merge is
// position-aligned: the anchor's postings resolve on whichever shard knows
// the token, every shard counts its own annotations along those positions,
// and all counts are clamped to the shortest shard's tuple count so the
// statistics describe one consistent prefix.
func TopKMerged(idxs []*Index, q Query) (Answer, error) {
	if len(idxs) == 1 {
		return idxs[0].TopK(q)
	}
	if len(idxs) == 0 {
		return Answer{}, ErrUnknownAnchor
	}
	minN := idxs[0].n
	for _, idx := range idxs[1:] {
		if idx.n < minN {
			minN = idx.n
		}
	}
	var postings []int
	for _, idx := range idxs {
		p, err := idx.anchorPostings(q.Anchor)
		if err != nil {
			continue
		}
		if p = clampBelow(p, minN); len(p) > 0 {
			postings = p
			break
		}
	}
	if len(postings) == 0 {
		return Answer{}, ErrUnknownAnchor
	}
	var results []Result
	for _, idx := range idxs {
		counts := make(map[itemset.Item]int)
		for _, p := range postings {
			t, terr := idx.view.Tuple(p)
			if terr != nil {
				return Answer{}, terr
			}
			for _, a := range t.Annots {
				counts[a]++
			}
		}
		dict := idx.view.Dictionary()
		for cand, co := range counts {
			token := dict.Token(cand)
			if token == q.Anchor {
				continue
			}
			freqC := len(clampBelow(idx.view.TuplesWith(cand), minN))
			results = append(results, scoreCandidate(token, co, len(postings), freqC, minN, q.MinLift)...)
		}
	}
	return Answer{
		Anchor:      q.Anchor,
		AnchorCount: len(postings),
		N:           minN,
		Results:     rank(results, q.K),
	}, nil
}

// BruteForce answers an anchor query by O(N·M) recomputation — a full scan
// per candidate annotation, using no derived structure. It exists as the
// equivalence oracle for the cached-index path.
func BruteForce(view *relation.View, q Query) (Answer, error) {
	dict := view.Dictionary()
	anchorItem, ok := dict.Lookup(q.Anchor)
	if !ok {
		return Answer{}, ErrUnknownAnchor
	}
	contains := func(t relation.Tuple, it itemset.Item) bool {
		if it.IsData() {
			return t.Data.Contains(it)
		}
		return t.Annots.Contains(it)
	}
	freqA := 0
	view.Each(func(_ int, t relation.Tuple) bool {
		if contains(t, anchorItem) {
			freqA++
		}
		return true
	})
	if freqA == 0 {
		return Answer{}, ErrUnknownAnchor
	}
	n := view.Len()
	var results []Result
	for _, cand := range view.Annotations() {
		token := dict.Token(cand)
		if token == q.Anchor {
			continue
		}
		co, freqC := 0, 0
		view.Each(func(_ int, t relation.Tuple) bool {
			hasCand := t.Annots.Contains(cand)
			if hasCand {
				freqC++
			}
			if hasCand && contains(t, anchorItem) {
				co++
			}
			return true
		})
		if co == 0 {
			continue
		}
		results = append(results, scoreCandidate(token, co, freqA, freqC, n, q.MinLift)...)
	}
	return Answer{
		Anchor:      q.Anchor,
		AnchorCount: freqA,
		N:           n,
		Results:     rank(results, q.K),
	}, nil
}
