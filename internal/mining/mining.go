// Package mining is the annotation-targeted mining driver: it projects an
// annotated relation into transactions, runs a frequent-itemset miner
// (Apriori or FP-Growth), and extracts the two rule families of the paper —
// data-to-annotation (Def. 4.2) and annotation-to-annotation (Def. 4.3) —
// together with the side products the incremental engine needs:
//
//   - the frequent pure-data pattern catalog (rule LHS "de-numerators");
//   - the frequent annotation pattern catalog;
//   - the candidate store of near-miss rules ("rules slightly below the
//     minimum support and confidence requirements", §4.3 Results), mined at
//     a slack-reduced threshold so that later updates can promote them
//     without touching the full database.
package mining

import (
	"fmt"

	"annotadb/internal/apriori"
	"annotadb/internal/fpgrowth"
	"annotadb/internal/itemset"
	"annotadb/internal/relation"
	"annotadb/internal/rules"
)

// Algorithm selects the frequent-itemset miner.
type Algorithm uint8

const (
	// AlgorithmApriori uses the constraint-aware Apriori miner (Figure 3
	// with the paper's early elimination). The default.
	AlgorithmApriori Algorithm = iota
	// AlgorithmFPGrowth uses FP-Growth with per-annotation conditional
	// databases for the Def. 4.2 patterns.
	AlgorithmFPGrowth
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case AlgorithmApriori:
		return "apriori"
	case AlgorithmFPGrowth:
		return "fp-growth"
	default:
		return fmt.Sprintf("Algorithm(%d)", uint8(a))
	}
}

// DefaultCandidateSlack is the fraction of the support threshold at which
// near-miss rules are retained for incremental promotion.
const DefaultCandidateSlack = 0.8

// Config parameterizes a full mining pass.
type Config struct {
	// MinSupport α and MinConfidence β, both in [0, 1].
	MinSupport    float64
	MinConfidence float64
	// MineDataRules / MineAnnotRules select the rule families; both false
	// means both true (mine everything).
	MineDataRules  bool
	MineAnnotRules bool
	// IncludeDerived counts generalization labels as annotations during
	// mining, which is how the paper mines the "extended annotated
	// database" of §4.1. Default true via zero-value inversion below.
	ExcludeDerived bool
	// CandidateSlack γ ∈ (0, 1]: near-miss rules are kept when their
	// pattern count reaches γ·α·N. 0 means DefaultCandidateSlack; 1 keeps
	// no extra candidates.
	CandidateSlack float64
	// Algorithm selects the miner.
	Algorithm Algorithm
	// MaxLen bounds pattern size (0 = unbounded).
	MaxLen int
	// Parallelism is passed to the Apriori counting phase.
	Parallelism int
	// Strategy is passed to Apriori (hash-tree vs naive, for ablations).
	Strategy apriori.CountingStrategy
}

func (c Config) mineData() bool  { return c.MineDataRules || !c.MineAnnotRules }
func (c Config) mineAnnot() bool { return c.MineAnnotRules || !c.MineDataRules }

func (c Config) slack() float64 {
	if c.CandidateSlack <= 0 {
		return DefaultCandidateSlack
	}
	if c.CandidateSlack > 1 {
		return 1
	}
	return c.CandidateSlack
}

// Validate rejects out-of-range thresholds.
func (c Config) Validate() error {
	if c.MinSupport < 0 || c.MinSupport > 1 {
		return fmt.Errorf("mining: min support %v out of [0,1]", c.MinSupport)
	}
	if c.MinConfidence < 0 || c.MinConfidence > 1 {
		return fmt.Errorf("mining: min confidence %v out of [0,1]", c.MinConfidence)
	}
	if c.CandidateSlack < 0 || c.CandidateSlack > 1 {
		return fmt.Errorf("mining: candidate slack %v out of [0,1]", c.CandidateSlack)
	}
	return nil
}

// Result carries the rules plus the incremental engine's working state.
type Result struct {
	// Rules hold the valid rules: support ≥ α and confidence ≥ β.
	Rules *rules.Set
	// Candidates hold near-miss rules: pattern count ≥ γ·α·N but either
	// support or confidence below threshold. Disjoint from Rules.
	Candidates *rules.Set
	// DataPatterns catalogs pure-data itemsets with count ≥ γ·α·N
	// (including all rule LHS de-numerators).
	DataPatterns *apriori.Catalog
	// AnnotPatterns catalogs pure-annotation itemsets with count ≥ γ·α·N.
	AnnotPatterns *apriori.Catalog
	// N is the relation size at mining time.
	N int
	// MinCount and SlackCount are the absolute thresholds used.
	MinCount   int
	SlackCount int
}

// Transactions projects the relation into mining transactions.
// When excludeDerived is set, generalization labels are dropped.
func Transactions(rel *relation.Relation, excludeDerived bool) []itemset.Itemset {
	txns := make([]itemset.Itemset, 0, rel.Len())
	rel.Each(func(i int, t relation.Tuple) bool {
		items := t.Items()
		if excludeDerived {
			items = items.Filter(func(it itemset.Item) bool { return !it.IsDerived() })
		}
		txns = append(txns, items)
		return true
	})
	return txns
}

// Mine runs a full mining pass over the relation.
func Mine(rel *relation.Relation, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	txns := Transactions(rel, cfg.ExcludeDerived)
	return MineTransactions(txns, cfg)
}

// MineTransactions runs a full mining pass over pre-projected transactions.
// It is the entry point the benchmarks and the incremental engine's re-mine
// fallback share with Mine.
func MineTransactions(txns []itemset.Itemset, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := len(txns)
	res := &Result{
		Rules:      rules.NewSet(),
		Candidates: rules.NewSet(),
		N:          n,
		MinCount:   apriori.MinCountFor(cfg.MinSupport, n),
		SlackCount: apriori.MinCountFor(cfg.slack()*cfg.MinSupport, n),
	}
	if res.SlackCount > res.MinCount {
		res.SlackCount = res.MinCount
	}
	if n == 0 {
		res.DataPatterns = apriori.NewCatalog(0)
		res.AnnotPatterns = apriori.NewCatalog(0)
		return res, nil
	}

	switch cfg.Algorithm {
	case AlgorithmFPGrowth:
		mineFPGrowth(txns, cfg, res)
	default:
		mineApriori(txns, cfg, res)
	}
	return res, nil
}

// mineApriori mines both families with the constraint-aware Apriori:
// one pass with an annotation budget of 1 over the full transactions (data
// patterns + Def. 4.2 rule patterns), one unconstrained pass over the
// annotation projection (Def. 4.3 patterns).
func mineApriori(txns []itemset.Itemset, cfg Config, res *Result) {
	acfg := apriori.Config{
		MinCount:    res.SlackCount,
		MaxLen:      cfg.MaxLen,
		Strategy:    cfg.Strategy,
		Parallelism: cfg.Parallelism,
	}

	if cfg.mineData() {
		acfg.MaxAnnotations = 1
		mixed := apriori.Mine(txns, acfg)
		res.DataPatterns = extractDataCatalog(mixed, res.N)
		extractDataRules(mixed, res, cfg)
	} else {
		acfg.MaxAnnotations = 0
		res.DataPatterns = apriori.Mine(txns, acfg)
	}

	annotTxns := annotationProjection(txns)
	acfg.MaxAnnotations = -1
	res.AnnotPatterns = apriori.Mine(annotTxns, acfg)
	if cfg.mineAnnot() {
		extractAnnotRules(res.AnnotPatterns, res, cfg)
	}
}

// mineFPGrowth mines the same families with FP-Growth: the data projection
// for pure-data patterns, a conditional database per qualifying annotation
// for the Def. 4.2 patterns, and the annotation projection for Def. 4.3.
func mineFPGrowth(txns []itemset.Itemset, cfg Config, res *Result) {
	fcfg := fpgrowth.Config{MinCount: res.SlackCount, MaxLen: cfg.MaxLen}

	dataTxns := make([]itemset.Itemset, len(txns))
	annotFreq := make(map[itemset.Item]int)
	for i, t := range txns {
		data, annots := t.Split()
		dataTxns[i] = data
		for _, a := range annots {
			annotFreq[a]++
		}
	}
	res.DataPatterns = fpgrowth.Mine(dataTxns, fcfg)
	res.DataPatterns.SetTotal(res.N)

	if cfg.mineData() {
		// Def. 4.2 patterns X ∪ {a}: conditional data mining per annotation.
		// MaxLen applies to the full pattern, so the conditional side mines
		// one item shorter.
		ccfg := fcfg
		if ccfg.MaxLen > 0 {
			ccfg.MaxLen--
			if ccfg.MaxLen == 0 {
				ccfg.MaxLen = -1 // MaxLen 1 ⇒ no conditional patterns at all
			}
		}
		for a, freq := range annotFreq {
			if freq < res.SlackCount {
				continue
			}
			if ccfg.MaxLen < 0 {
				break
			}
			cond := condDataTxns(txns, a)
			catalog := fpgrowth.Mine(cond, ccfg)
			anchor := a
			catalog.Each(func(x itemset.Itemset, count int) bool {
				if count < res.SlackCount {
					return true
				}
				lhsCount, ok := res.DataPatterns.Count(x)
				if !ok {
					// count(X) ≥ count(X∪{a}) ≥ slack ⇒ X is cataloged.
					panic(fmt.Sprintf("mining: LHS %v missing from data catalog", x))
				}
				emitRule(res, cfg, rules.Rule{
					LHS: x, RHS: anchor,
					PatternCount: count, LHSCount: lhsCount, N: res.N,
				})
				return true
			})
		}
	}

	annotTxns := annotationProjection(txns)
	res.AnnotPatterns = fpgrowth.Mine(annotTxns, fcfg)
	res.AnnotPatterns.SetTotal(res.N)
	if cfg.mineAnnot() {
		extractAnnotRules(res.AnnotPatterns, res, cfg)
	}
}

func condDataTxns(txns []itemset.Itemset, anchor itemset.Item) []itemset.Itemset {
	var out []itemset.Itemset
	for _, t := range txns {
		if t.Contains(anchor) {
			out = append(out, t.DataPart())
		}
	}
	return out
}

func annotationProjection(txns []itemset.Itemset) []itemset.Itemset {
	out := make([]itemset.Itemset, len(txns))
	for i, t := range txns {
		out[i] = t.AnnotationPart()
	}
	return out
}

// extractDataCatalog pulls the pure-data itemsets out of the mixed
// (annotation budget 1) catalog.
func extractDataCatalog(mixed *apriori.Catalog, n int) *apriori.Catalog {
	out := apriori.NewCatalog(n)
	mixed.Each(func(s itemset.Itemset, count int) bool {
		if s.PureData() {
			out.Add(s, count)
		}
		return true
	})
	return out
}

// extractDataRules turns each mixed itemset with exactly one annotation into
// a Def. 4.2 rule.
func extractDataRules(mixed *apriori.Catalog, res *Result, cfg Config) {
	mixed.Each(func(p itemset.Itemset, count int) bool {
		if p.Len() < 2 || p.CountAnnotations() != 1 {
			return true
		}
		x, annots := p.Split()
		if x.Empty() {
			return true // a lone annotation, not a rule pattern
		}
		lhsCount, ok := mixed.Count(x)
		if !ok {
			panic(fmt.Sprintf("mining: LHS %v missing from mixed catalog", x))
		}
		emitRule(res, cfg, rules.Rule{
			LHS: x.Clone(), RHS: annots[0],
			PatternCount: count, LHSCount: lhsCount, N: res.N,
		})
		return true
	})
}

// extractAnnotRules turns each annotation pattern P into the |P| Def. 4.3
// rules P\{a} ⇒ a.
func extractAnnotRules(annotCatalog *apriori.Catalog, res *Result, cfg Config) {
	annotCatalog.Each(func(p itemset.Itemset, count int) bool {
		if p.Len() < 2 {
			return true
		}
		for i := 0; i < p.Len(); i++ {
			rhs := p[i]
			lhs := p.WithoutIndex(i)
			lhsCount, ok := annotCatalog.Count(lhs)
			if !ok {
				panic(fmt.Sprintf("mining: LHS %v missing from annotation catalog", lhs))
			}
			emitRule(res, cfg, rules.Rule{
				LHS: lhs, RHS: rhs,
				PatternCount: count, LHSCount: lhsCount, N: res.N,
			})
		}
		return true
	})
}

// emitRule files the rule as valid or near-miss candidate.
func emitRule(res *Result, cfg Config, r rules.Rule) {
	if r.Meets(cfg.MinSupport, cfg.MinConfidence) {
		res.Rules.Add(r)
		return
	}
	if r.PatternCount >= res.SlackCount {
		res.Candidates.Add(r)
	}
}
