package mining

import (
	"math/rand"
	"testing"
	"testing/quick"

	"annotadb/internal/itemset"
	"annotadb/internal/relation"
	"annotadb/internal/rules"
)

// fixture builds the running example: 10 tuples where
//   - {28, 85} strongly implies Annot_1 (Def. 4.2), and
//   - Annot_1 co-occurs with Annot_5 often (Def. 4.3).
func fixture() *relation.Relation {
	return relation.FromTokens(
		[][]string{
			{"28", "85", "99"},
			{"28", "85", "12"},
			{"28", "85", "40"},
			{"28", "85", "41"},
			{"28", "85"},
			{"28", "41"},
			{"41", "85"},
			{"62", "12"},
			{"62", "40"},
			{"99", "12"},
		},
		[][]string{
			{"Annot_1", "Annot_5"},
			{"Annot_1", "Annot_5"},
			{"Annot_1", "Annot_5"},
			{"Annot_1"},
			{"Annot_1"},
			nil,
			{"Annot_5"},
			nil,
			nil,
			nil,
		},
	)
}

func lookup(t *testing.T, rel *relation.Relation, tok string) itemset.Item {
	t.Helper()
	it, ok := rel.Dictionary().Lookup(tok)
	if !ok {
		t.Fatalf("token %q not interned", tok)
	}
	return it
}

func TestMineDataToAnnotationRules(t *testing.T) {
	rel := fixture()
	res, err := Mine(rel, Config{MinSupport: 0.4, MinConfidence: 0.8, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	v28 := lookup(t, rel, "28")
	v85 := lookup(t, rel, "85")
	a1 := lookup(t, rel, "Annot_1")

	// {28,85} ⇒ Annot_1: pattern count 5 of 10 (sup 0.5), LHS count 5,
	// confidence 1.0.
	want := rules.Rule{LHS: itemset.New(v28, v85), RHS: a1, PatternCount: 5, LHSCount: 5, N: 10}
	got, ok := res.Rules.Get(want.ID())
	if !ok {
		t.Fatalf("rule {28,85}=>Annot_1 not mined; rules: %v", res.Rules.Sorted())
	}
	if got.PatternCount != 5 || got.LHSCount != 5 || got.N != 10 {
		t.Errorf("counts = %d/%d/%d, want 5/5/10", got.PatternCount, got.LHSCount, got.N)
	}
	// {28} ⇒ Annot_1: pattern 5, LHS 6 → confidence 0.833 ≥ 0.8, sup 0.5. Valid.
	r28 := rules.Rule{LHS: itemset.New(v28), RHS: a1}
	if _, ok := res.Rules.Get(r28.ID()); !ok {
		t.Errorf("rule {28}=>Annot_1 missing")
	}
	// Every valid rule meets thresholds and validates.
	res.Rules.Each(func(r rules.Rule) bool {
		if err := r.Validate(); err != nil {
			t.Errorf("invalid rule mined: %v (%v)", r, err)
		}
		if !r.Meets(0.4, 0.8) {
			t.Errorf("rule below thresholds: %v", r)
		}
		return true
	})
}

func TestMineAnnotationToAnnotationRules(t *testing.T) {
	rel := fixture()
	res, err := Mine(rel, Config{MinSupport: 0.3, MinConfidence: 0.7, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	a1 := lookup(t, rel, "Annot_1")
	a5 := lookup(t, rel, "Annot_5")
	// Annot_5 ⇒ Annot_1: pattern 3, LHS(Annot_5) 4 → conf 0.75 ≥ 0.7, sup 0.3.
	r := rules.Rule{LHS: itemset.New(a5), RHS: a1}
	got, ok := res.Rules.Get(r.ID())
	if !ok {
		t.Fatalf("rule Annot_5=>Annot_1 not mined; rules: %v", res.Rules.Sorted())
	}
	if got.PatternCount != 3 || got.LHSCount != 4 {
		t.Errorf("counts = %d/%d, want 3/4", got.PatternCount, got.LHSCount)
	}
	// Annot_1 ⇒ Annot_5: conf 3/5 = 0.6 < 0.7 → not valid, but within the
	// slack pool (pattern 3 ≥ slackCount).
	rev := rules.Rule{LHS: itemset.New(a1), RHS: a5}
	if _, ok := res.Rules.Get(rev.ID()); ok {
		t.Error("rule Annot_1=>Annot_5 should fail confidence")
	}
	if _, ok := res.Candidates.Get(rev.ID()); !ok {
		t.Error("rule Annot_1=>Annot_5 should be a near-miss candidate")
	}
}

func TestRulesAndCandidatesDisjoint(t *testing.T) {
	res, err := Mine(fixture(), Config{MinSupport: 0.3, MinConfidence: 0.7, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	res.Candidates.Each(func(r rules.Rule) bool {
		if res.Rules.Has(r.ID()) {
			t.Errorf("rule %v in both sets", r)
		}
		if r.Meets(0.3, 0.7) {
			t.Errorf("candidate %v actually meets thresholds", r)
		}
		return true
	})
}

func TestMineNoMixedRules(t *testing.T) {
	res, err := Mine(fixture(), Config{MinSupport: 0.2, MinConfidence: 0.5, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	check := func(r rules.Rule) bool {
		if r.Kind() == rules.MixedKind {
			t.Errorf("mixed rule emitted: %v", r)
		}
		if !r.RHS.IsAnnotation() {
			t.Errorf("non-annotation RHS: %v", r)
		}
		return true
	}
	res.Rules.Each(check)
	res.Candidates.Each(check)
}

func TestMineKindSelection(t *testing.T) {
	onlyData, err := Mine(fixture(), Config{MinSupport: 0.3, MinConfidence: 0.5, MineDataRules: true, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	onlyData.Rules.Each(func(r rules.Rule) bool {
		if r.Kind() != rules.DataToAnnotation {
			t.Errorf("unexpected kind %v with MineDataRules", r.Kind())
		}
		return true
	})
	onlyAnnot, err := Mine(fixture(), Config{MinSupport: 0.3, MinConfidence: 0.5, MineAnnotRules: true, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	onlyAnnot.Rules.Each(func(r rules.Rule) bool {
		if r.Kind() != rules.AnnotationToAnnotation {
			t.Errorf("unexpected kind %v with MineAnnotRules", r.Kind())
		}
		found = true
		return true
	})
	if !found {
		t.Error("no annotation rules mined")
	}
	// Both flags set mines both.
	both, err := Mine(fixture(), Config{MinSupport: 0.3, MinConfidence: 0.5, MineDataRules: true, MineAnnotRules: true, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if both.Rules.OfKind(rules.DataToAnnotation).Len() == 0 || both.Rules.OfKind(rules.AnnotationToAnnotation).Len() == 0 {
		t.Error("both-flags mining missed a family")
	}
}

func TestMineCatalogs(t *testing.T) {
	rel := fixture()
	res, err := Mine(rel, Config{MinSupport: 0.4, MinConfidence: 0.8, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	v28 := lookup(t, rel, "28")
	v85 := lookup(t, rel, "85")
	a1 := lookup(t, rel, "Annot_1")

	if n, ok := res.DataPatterns.Count(itemset.New(v28, v85)); !ok || n != 5 {
		t.Errorf("data catalog {28,85} = %d, %v; want 5", n, ok)
	}
	res.DataPatterns.Each(func(s itemset.Itemset, _ int) bool {
		if !s.PureData() {
			t.Errorf("annotation leaked into data catalog: %v", s)
		}
		return true
	})
	if n, ok := res.AnnotPatterns.Count(itemset.New(a1)); !ok || n != 5 {
		t.Errorf("annot catalog {Annot_1} = %d, %v; want 5", n, ok)
	}
	res.AnnotPatterns.Each(func(s itemset.Itemset, _ int) bool {
		if !s.PureAnnotations() {
			t.Errorf("data leaked into annotation catalog: %v", s)
		}
		return true
	})
	if res.MinCount != 4 {
		t.Errorf("MinCount = %d, want 4 (0.4×10)", res.MinCount)
	}
	if res.SlackCount != 4 { // 0.8 slack × 0.4 × 10 = 3.2 → 4
		t.Errorf("SlackCount = %d, want 4", res.SlackCount)
	}
}

func TestMineEmptyRelation(t *testing.T) {
	res, err := Mine(relation.New(), Config{MinSupport: 0.4, MinConfidence: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rules.Len() != 0 || res.Candidates.Len() != 0 {
		t.Error("empty relation produced rules")
	}
	if res.N != 0 {
		t.Errorf("N = %d", res.N)
	}
}

func TestMineConfigValidation(t *testing.T) {
	bad := []Config{
		{MinSupport: -0.1},
		{MinSupport: 1.1},
		{MinSupport: 0.5, MinConfidence: -1},
		{MinSupport: 0.5, MinConfidence: 2},
	}
	for _, cfg := range bad {
		if _, err := Mine(relation.New(), cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestMineExcludeDerived(t *testing.T) {
	rel := relation.New()
	dict := rel.Dictionary()
	g, err := dict.InternDerived("Annot_X")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		tu := relation.MustTuple(dict, []string{"7"}, []string{"Annot_1"})
		rel.Append(tu)
		if err := rel.AddAnnotation(i, g); err != nil {
			t.Fatal(err)
		}
	}
	// Included (default): {7} ⇒ Annot_X is minable.
	res, err := Mine(rel, Config{MinSupport: 0.5, MinConfidence: 0.9, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	v7 := lookup(t, rel, "7")
	withG := rules.Rule{LHS: itemset.New(v7), RHS: g}
	if _, ok := res.Rules.Get(withG.ID()); !ok {
		t.Error("derived-RHS rule missing when derived included")
	}
	// Excluded: no rule may mention the derived label.
	res, err = Mine(rel, Config{MinSupport: 0.5, MinConfidence: 0.9, ExcludeDerived: true, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	res.Rules.Each(func(r rules.Rule) bool {
		if r.RHS.IsDerived() || !r.LHS.Filter(itemset.Item.IsDerived).Empty() {
			t.Errorf("derived item leaked: %v", r)
		}
		return true
	})
}

func TestMaxLenBoundsPatterns(t *testing.T) {
	res, err := Mine(fixture(), Config{MinSupport: 0.2, MinConfidence: 0.5, MaxLen: 2, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	res.Rules.Each(func(r rules.Rule) bool {
		if r.Pattern().Len() > 2 {
			t.Errorf("pattern exceeds MaxLen: %v", r)
		}
		return true
	})
}

// randomRelation plants correlated and noise tuples.
func randomRelation(rng *rand.Rand) *relation.Relation {
	rel := relation.New()
	dict := rel.Dictionary()
	annots := make([]itemset.Item, 4)
	for i := range annots {
		annots[i] = relation.MustAnnotation(dict, "Annot_"+string(rune('1'+i)))
	}
	n := 30 + rng.Intn(40)
	for i := 0; i < n; i++ {
		var items []itemset.Item
		for v := 0; v < 1+rng.Intn(4); v++ {
			items = append(items, itemset.DataItem(1+rng.Intn(8)))
		}
		for _, a := range annots {
			if rng.Intn(3) == 0 {
				items = append(items, a)
			}
		}
		rel.Append(relation.NewTuple(items...))
	}
	return rel
}

// TestPropertyAprioriAndFPGrowthDriversAgree: the two algorithm backends
// must emit identical rule sets, candidates, and catalogs.
func TestPropertyAprioriAndFPGrowthDriversAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	f := func() bool {
		rel := randomRelation(rng)
		sup := 0.15 + rng.Float64()*0.35
		conf := 0.5 + rng.Float64()*0.4
		ap, err := Mine(rel, Config{MinSupport: sup, MinConfidence: conf, Algorithm: AlgorithmApriori, Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		fp, err := Mine(rel, Config{MinSupport: sup, MinConfidence: conf, Algorithm: AlgorithmFPGrowth})
		if err != nil {
			t.Fatal(err)
		}
		if diff := rules.Diff(fp.Rules, ap.Rules, rel.Dictionary()); len(diff) != 0 {
			t.Logf("rule diff (sup=%.3f conf=%.3f): %v", sup, conf, diff)
			return false
		}
		if diff := rules.Diff(fp.Candidates, ap.Candidates, rel.Dictionary()); len(diff) != 0 {
			t.Logf("candidate diff: %v", diff)
			return false
		}
		if !fp.DataPatterns.Equal(ap.DataPatterns) {
			t.Log("data catalogs differ")
			return false
		}
		if !fp.AnnotPatterns.Equal(ap.AnnotPatterns) {
			t.Log("annot catalogs differ")
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyRuleCountsMatchBruteForce verifies every mined rule's counts
// against direct scans.
func TestPropertyRuleCountsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	f := func() bool {
		rel := randomRelation(rng)
		res, err := Mine(rel, Config{MinSupport: 0.2, MinConfidence: 0.6, Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		ok := true
		check := func(r rules.Rule) bool {
			if rel.CountPattern(r.Pattern(), nil) != r.PatternCount {
				ok = false
				return false
			}
			if rel.CountPattern(r.LHS, nil) != r.LHSCount {
				ok = false
				return false
			}
			if r.N != rel.Len() {
				ok = false
				return false
			}
			return true
		}
		res.Rules.Each(check)
		if ok {
			res.Candidates.Each(check)
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCompletenessSmall brute-forces all 1-LHS rules on tiny
// relations and checks none are missed.
func TestPropertyCompletenessSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	f := func() bool {
		rel := randomRelation(rng)
		sup, conf := 0.25, 0.7
		res, err := Mine(rel, Config{MinSupport: sup, MinConfidence: conf, Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		// Enumerate every (single item, annotation) implication.
		items := map[itemset.Item]bool{}
		rel.Each(func(i int, tu relation.Tuple) bool {
			for _, it := range tu.Items() {
				items[it] = true
			}
			return true
		})
		for lhs := range items {
			for rhs := range items {
				if !rhs.IsAnnotation() || lhs == rhs {
					continue
				}
				// Defs 4.2/4.3: LHS all-data or all-annotation; single-item
				// LHS is always one or the other.
				pattern := itemset.New(lhs, rhs)
				pc := rel.CountPattern(pattern, nil)
				lc := rel.CountPattern(itemset.New(lhs), nil)
				r := rules.Rule{LHS: itemset.New(lhs), RHS: rhs, PatternCount: pc, LHSCount: lc, N: rel.Len()}
				if r.Meets(sup, conf) {
					if _, ok := res.Rules.Get(r.ID()); !ok {
						t.Logf("missing rule %v (pc=%d lc=%d n=%d)", r, pc, lc, rel.Len())
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestAlgorithmString(t *testing.T) {
	if AlgorithmApriori.String() != "apriori" || AlgorithmFPGrowth.String() != "fp-growth" {
		t.Error("algorithm names wrong")
	}
	if Algorithm(9).String() == "" {
		t.Error("unknown algorithm renders empty")
	}
}

func TestTransactionsProjection(t *testing.T) {
	rel := fixture()
	txns := Transactions(rel, false)
	if len(txns) != rel.Len() {
		t.Fatalf("projected %d txns, want %d", len(txns), rel.Len())
	}
	tu, _ := rel.Tuple(0)
	if !txns[0].Equal(tu.Items()) {
		t.Errorf("txn 0 = %v, want %v", txns[0], tu.Items())
	}
}
