// Correlation-discovery integration tests at the facade level: sharded
// merge equality, cached-index-vs-recompute equivalence under live writes,
// and churn-anomaly events surviving an SSE-style cursor resume across a
// clean durable restart.
package annotadb

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"annotadb/internal/correlate"
)

// correlateKeys renders an answer as comparable strings (the full scored
// identity of every ranked candidate).
func correlateKeys(a CorrelateAnswer) []string {
	out := make([]string, 0, len(a.Results)+1)
	out = append(out, fmt.Sprintf("anchor=%s count=%d n=%d", a.Anchor, a.AnchorCount, a.N))
	for _, r := range a.Results {
		out = append(out, fmt.Sprintf("%s fam=%s co=%d freq=%d conf=%.12g lift=%.12g chi2=%.12g p=%.12g",
			r.Token, r.Family, r.Count, r.Frequency, r.Confidence, r.Lift, r.ChiSquare, r.PValue))
	}
	return out
}

// TestCorrelateShardedMatchesUnsharded: the merged per-shard answer is
// byte-identical to the unsharded one for every anchor — annotation and
// data value alike — before and after a mixed write sequence.
func TestCorrelateShardedMatchesUnsharded(t *testing.T) {
	plain, err := NewEngine(shardedFixture(t), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewServer(plain, ServeOptions{BatchWindow: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer closeServer(t, ref)

	srv, err := NewShardedServer(shardedFixture(t), testOpts(), ServeOptions{BatchWindow: -1, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer closeServer(t, srv)

	ctx := context.Background()
	compare := func(stage string) {
		t.Helper()
		for _, anchor := range []string{"Annot_q:1", "Annot_q:5", "Annot_src:a", "28", "85", "62", "12"} {
			for _, q := range []struct {
				k       int
				minLift float64
			}{{0, 0}, {3, 1.2}, {100, 0.5}} {
				want, _, wantErr := ref.Correlate(anchor, q.k, q.minLift)
				got, rs, gotErr := srv.Correlate(anchor, q.k, q.minLift)
				if (gotErr != nil) != (wantErr != nil) {
					t.Fatalf("%s anchor %q: sharded err %v, unsharded err %v", stage, anchor, gotErr, wantErr)
				}
				if gotErr != nil {
					continue
				}
				if len(rs.Shards) != 3 {
					t.Fatalf("%s anchor %q: sharded ReadSeq vector %v, want width 3", stage, anchor, rs.Shards)
				}
				if !reflect.DeepEqual(correlateKeys(got), correlateKeys(want)) {
					t.Fatalf("%s anchor %q k=%d minLift=%v diverged:\nsharded   %v\nunsharded %v",
						stage, anchor, q.k, q.minLift, correlateKeys(got), correlateKeys(want))
				}
			}
		}
		for _, s := range []*Server{ref, srv} {
			if _, _, err := s.Correlate("never-seen", 0, 0); !errors.Is(err, ErrUnknownAnchor) {
				t.Fatalf("%s unknown anchor: got %v, want ErrUnknownAnchor", stage, err)
			}
		}
	}
	compare("seed")

	writes := func(s *Server) {
		t.Helper()
		if _, err := s.AddAnnotations(ctx, []AnnotationUpdate{
			{Tuple: 5, Annotation: "Annot_q:1"},
			{Tuple: 9, Annotation: "Annot_src:a"},
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.AddTuples(ctx, []TupleSpec{
			{Values: []string{"28", "85"}, Annotations: []string{"Annot_q:1", "Annot_src:a"}},
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.RemoveAnnotations(ctx, []AnnotationUpdate{{Tuple: 0, Annotation: "Annot_q:5"}}); err != nil {
			t.Fatal(err)
		}
	}
	writes(ref)
	writes(srv)
	compare("after writes")

	cs := srv.CorrelateStats()
	if cs.IndexBuilds == 0 || cs.CacheHits == 0 {
		t.Fatalf("sharded correlate stats = %+v, want builds and cache hits", cs)
	}
}

// TestCorrelateEquivalenceUnderLiveWrites is the acceptance property under
// concurrency: while writers churn annotations and tuples, every reader
// pins one published snapshot and the cached index's answer on it must
// equal the O(N·M) brute-force recomputation over the same frozen view.
// Run under -race by the CI race job.
func TestCorrelateEquivalenceUnderLiveWrites(t *testing.T) {
	eng, err := NewEngine(shardedFixture(t), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(eng, ServeOptions{BatchWindow: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer closeServer(t, srv)

	ctx := context.Background()
	stop := make(chan struct{})
	var writers sync.WaitGroup
	for g := 0; g < 2; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tok := fmt.Sprintf("Annot_live:%d_%d", g, i%3)
				idx := (g*3 + i) % 10
				if _, err := srv.AddAnnotations(ctx, []AnnotationUpdate{{Tuple: idx, Annotation: tok}}); err != nil {
					t.Errorf("writer %d: %v", g, err)
					return
				}
				if _, err := srv.RemoveAnnotations(ctx, []AnnotationUpdate{{Tuple: idx, Annotation: tok}}); err != nil {
					t.Errorf("writer %d: %v", g, err)
					return
				}
			}
		}(g)
	}

	anchors := []string{"Annot_q:1", "Annot_q:5", "28", "85", "Annot_live:0_0"}
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for i := 0; i < 150; i++ {
				q := correlate.Query{Anchor: anchors[(r+i)%len(anchors)], K: 1 + i%8, MinLift: float64(i%2) * 0.8}
				if q.MinLift == 0 {
					q.MinLift = correlate.DefaultMinLift
				}
				snap := srv.core.Snapshot()
				got, gotErr := srv.correlateIndex(snap).TopK(q)
				want, wantErr := correlate.BruteForce(snap.View, q)
				if (gotErr != nil) != (wantErr != nil) {
					t.Errorf("reader %d anchor %q: index err %v, brute err %v", r, q.Anchor, gotErr, wantErr)
					return
				}
				if gotErr == nil && !reflect.DeepEqual(got, want) {
					t.Errorf("reader %d anchor %q k=%d: cached index diverged from recompute:\nindex %+v\nbrute %+v",
						r, q.Anchor, q.K, got, want)
					return
				}
			}
		}(r)
	}
	readers.Wait()
	close(stop)
	writers.Wait()

	// The cache amortizes: builds are bounded by generations actually
	// queried, and with 450 reads over few generations hits must dominate.
	cs := srv.CorrelateStats()
	if cs.IndexBuilds == 0 || cs.CacheHits < cs.IndexBuilds {
		t.Fatalf("correlate stats = %+v, want cache hits to dominate builds", cs)
	}
}

// TestChurnAnomalySSEResumableAcrossRestart: a churn_anomaly event produced
// by the live detector lands in the durable event log, and a subscriber
// resuming from its cursor after a clean close and reopen replays exactly
// the anomaly it saw live.
func TestChurnAnomalySSEResumableAcrossRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	seed := filepath.Join(t.TempDir(), "dataset.txt")
	if err := shardedFixture(t).Save(seed); err != nil {
		t.Fatal(err)
	}
	open := func() *Server {
		eng, _, err := OpenDurable(seed, testOpts(), DurabilityOptions{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := NewServer(eng, ServeOptions{
			BatchWindow: -1,
			Stream:      StreamOptions{RetainSegments: -1},
			Correlate:   CorrelateOptions{Anomalies: true, AnomalyWindow: 25 * time.Millisecond, AnomalyThreshold: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}

	srv := open()
	if !srv.CorrelateStats().DetectorRunning {
		t.Fatal("detector not running despite CorrelateOptions.Anomalies")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	ch, err := srv.Subscribe(ctx, SubscribeOptions{Kinds: []string{EventChurnAnomaly}, Buffer: 64})
	if err != nil {
		t.Fatal(err)
	}

	// Seed a small churn baseline, go silent so it decays, then churn hard
	// until a window spikes past threshold × baseline.
	churnRound(t, srv, 0)
	time.Sleep(150 * time.Millisecond)
	var live Event
	deadline := time.After(20 * time.Second)
burst:
	for i := 1; ; i++ {
		select {
		case ev, ok := <-ch:
			if !ok {
				t.Fatal("subscription closed before an anomaly")
			}
			live = ev
			break burst
		case <-deadline:
			t.Fatalf("no churn_anomaly after %d churn rounds (stats %+v)", i, srv.CorrelateStats())
		default:
			churnRound(t, srv, i)
			// Pace the churn: several rounds per 25ms window is far above
			// threshold × the decayed baseline, while keeping the WAL the
			// post-restart reopen must replay small.
			time.Sleep(2 * time.Millisecond)
		}
	}
	cancel()
	if live.Kind != EventChurnAnomaly || live.Cursor == 0 || live.Family == "" || live.Count == 0 {
		t.Fatalf("live anomaly incomplete: %+v", live)
	}
	if live.WindowMillis != 25 {
		t.Fatalf("live anomaly window = %dms, want 25", live.WindowMillis)
	}
	if srv.CorrelateStats().Anomalies == 0 {
		t.Fatalf("detector counters missed its own emission: %+v", srv.CorrelateStats())
	}
	closeServer(t, srv)

	// Reopen the same directory: cursors are durable, so resuming from the
	// anomaly's own cursor replays it verbatim.
	srv2 := open()
	defer closeServer(t, srv2)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	ch2, err := srv2.Subscribe(ctx2, SubscribeOptions{FromSeq: live.Cursor, Kinds: []string{EventChurnAnomaly}, Buffer: 64})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case got, ok := <-ch2:
		if !ok {
			t.Fatal("resumed subscription closed without replaying the anomaly")
		}
		if got.Kind == EventGap {
			t.Fatalf("resume hit a gap despite unlimited retention: %+v", got)
		}
		if got.Cursor != live.Cursor || got.Kind != live.Kind || got.Family != live.Family ||
			got.WindowMillis != live.WindowMillis || got.Count != live.Count ||
			got.Baseline != live.Baseline || !reflect.DeepEqual(got.Related, live.Related) {
			t.Fatalf("replayed anomaly diverged:\nreplayed %+v\nlive     %+v", got, live)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("replay of the anomaly cursor timed out")
	}
}
