module annotadb

go 1.22
