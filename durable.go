package annotadb

import (
	"fmt"
	"time"

	"annotadb/internal/relation"
	"annotadb/internal/shard"
	"annotadb/internal/storage"
	"annotadb/internal/wal"
)

// DurabilityOptions configure the persistent serving store: a write-ahead
// log of serving mutations plus periodic full-state checkpoints in one data
// directory. See OpenDurable.
type DurabilityOptions struct {
	// Dir is the data directory (created if absent). Required.
	Dir string
	// Shards partitions the durable store by annotation family into this
	// many independent shards, each with its own WAL and checkpoints under
	// Dir/shard-NN and a manifest tying their generations together. The
	// count is pinned by the manifest on first open; 0 or 1 keeps the
	// single-store layout.
	Shards int
	// Fsync says when log appends reach stable storage: "always" (default;
	// every record), "interval" (at most once per FsyncInterval), or
	// "never" (left to the OS page cache).
	Fsync string
	// FsyncInterval is the cadence under Fsync "interval" (0 = 100ms).
	FsyncInterval time.Duration
	// FlushWindow enables group commit under Fsync "always": appends skip
	// their inline fsync and one committer fsync covers every batch that
	// arrived while the previous fsync was in flight — acknowledgements
	// still wait for the covering fsync, so the durability contract is
	// unchanged. Zero keeps the per-batch fsync (the default); positive
	// lets the committer linger that long to absorb more batches per fsync;
	// negative group-commits with no linger. Sharded stores run one
	// committer per shard under the same policy.
	FlushWindow time.Duration
	// MaxGroupBytes caps the unsynced bytes a lingering commit group may
	// accumulate before its fsync is forced (0 = 1 MiB, negative uncaps).
	MaxGroupBytes int64
	// CheckpointBytes checkpoints when the log reaches this size
	// (0 = 4 MiB, negative disables the size policy). Sharded stores apply
	// the policy per shard.
	CheckpointBytes int64
	// CheckpointAge checkpoints when the oldest un-checkpointed record is
	// at least this old (0 disables the age policy).
	CheckpointAge time.Duration
	// Encoding selects the log record encoding: "binary" (default) or
	// "json". Recovery reads both regardless.
	Encoding string
}

func (d DurabilityOptions) internal() (wal.Options, error) {
	sync, err := wal.ParseSyncPolicy(d.Fsync)
	if err != nil {
		return wal.Options{}, err
	}
	enc, err := wal.ParseEncoding(d.Encoding)
	if err != nil {
		return wal.Options{}, err
	}
	return wal.Options{
		Dir:             d.Dir,
		Sync:            sync,
		SyncEvery:       d.FsyncInterval,
		FlushWindow:     d.FlushWindow,
		MaxGroupBytes:   d.MaxGroupBytes,
		Encoding:        enc,
		CheckpointBytes: d.CheckpointBytes,
		CheckpointAge:   d.CheckpointAge,
	}, nil
}

// HasDurableState reports whether dir holds state from a previous run — a
// single-store checkpoint or a sharded cluster manifest — i.e. whether
// OpenDurable would recover instead of bootstrapping. Callers that only
// mean to reopen existing state (no dataset to seed with) should check this
// first: bootstrapping a mistyped directory would quietly serve an empty
// dataset.
func HasDurableState(dir string) bool {
	return wal.HasCheckpoint(dir) || shard.HasDurableState(dir)
}

// RecoveryReport says how OpenDurable brought the store up.
type RecoveryReport struct {
	// FromCheckpoint is true when the engine was restored from a checkpoint
	// (for sharded stores: every shard restored) instead of bootstrapped
	// with a full mine.
	FromCheckpoint bool
	// RecordsReplayed is the number of log records replayed after the
	// checkpoint, summed across shards.
	RecordsReplayed int
	// TornTail reports that a torn final log record (crash artifact) was
	// dropped, in any shard.
	TornTail bool
	// Shards is the shard count of the recovered store (0 when unsharded).
	Shards int
	// PaddedTuples counts tuples re-appended into shard replicas that a
	// crash mid-append-fanout left behind (data values only; the padded
	// appends were never acknowledged). Always 0 for unsharded stores.
	PaddedTuples int
	// DurationSeconds is the wall time of recovery or bootstrap.
	DurationSeconds float64
}

// ShardDurabilityStats is one shard's write-ahead log and checkpoint
// activity inside DurabilityStats.
type ShardDurabilityStats struct {
	// Shard is the shard index.
	Shard int
	// RecordsAppended, LogBytes, Syncs, UnsyncedRecords, UnsyncedBytes,
	// Checkpoints, and CheckpointErrors mirror the top-level counters for
	// this shard alone.
	RecordsAppended  uint64
	LogBytes         int64
	Syncs            uint64
	UnsyncedRecords  int64
	UnsyncedBytes    int64
	Checkpoints      uint64
	CheckpointErrors uint64
}

// DurabilityStats reports write-ahead log and checkpoint activity for a
// durable server; see Server.Durability. For a sharded server the top-level
// counters are summed across shards and PerShard carries the breakdown.
type DurabilityStats struct {
	// RecordsAppended counts log records written since the store opened;
	// LogBytes is the current log size (checkpoints truncate it).
	RecordsAppended uint64
	LogBytes        int64
	// Syncs counts explicit log fsyncs. UnsyncedRecords and UnsyncedBytes
	// measure the current crash window: appended records whose covering
	// fsync has not completed yet (conservative — a record appended while a
	// sync is in flight stays counted until the next one). Under Fsync
	// "always" they are transiently non-zero only while a group commit is
	// in flight and never cover an acknowledged write; under "interval" and
	// "never" they bound what a crash right now could lose.
	Syncs           uint64
	UnsyncedRecords int64
	UnsyncedBytes   int64
	// Checkpoints and CheckpointErrors count checkpoint attempts since the
	// store opened; LastCheckpointUnixNano is the newest one's wall time
	// (0 = none this run).
	Checkpoints            uint64
	CheckpointErrors       uint64
	LastCheckpointUnixNano int64
	// Recovery echoes how the store came up.
	Recovery RecoveryReport
	// PerShard carries each shard's counters (nil when unsharded).
	PerShard []ShardDurabilityStats
	// Events reports the durable rule-churn event log (one per server —
	// sharded streams merge into a single cursor order, so the segments
	// live beside the cluster manifest, not inside the shard directories).
	// Nil when the stream is disabled.
	Events *EventLogStats
}

// EventLogStats reports the rotated-segment event log behind the rule-churn
// stream: how much retained history cursors can resume from, and the
// rotation/retention churn since the server started.
type EventLogStats struct {
	// Segments is the retained segment count (sealed + active);
	// FirstCursor and NextCursor bound the resumable history.
	Segments    int
	FirstCursor uint64
	NextCursor  uint64
	// RetainedBytes is the on-disk size of the retained segments.
	RetainedBytes int64
	// Appends counts events appended since open, Syncs explicit fsyncs of
	// the active segment (sealing a segment syncs it).
	Appends uint64
	Syncs   uint64
	// Rotations and RotatedBytes count segments sealed since open and their
	// size at sealing; RetentionTrims and TrimmedBytes count sealed
	// segments the retention policy deleted.
	Rotations      uint64
	RotatedBytes   int64
	RetentionTrims uint64
	TrimmedBytes   int64
}

// OpenDurable opens (or creates) the durable serving store in opts Dir and
// returns an engine backed by it.
//
// When the directory holds previous state, the engine is restored from its
// checkpoint(s) and the log tail(s) replayed — no mining pass, and dataPath
// is ignored. When the directory is empty, the dataset at dataPath (a
// Figure 4 file; "" for an empty dataset) is loaded, mined once (per shard,
// when dopts.Shards > 1), and checkpointed immediately so the next open
// skips the mine.
//
// The returned engine must be wrapped in NewServer before any mutation:
// only the serving writers journal batches to the logs. A sharded engine
// (dopts.Shards > 1) supports no direct Engine calls at all — every read
// and write goes through the Server.
func OpenDurable(dataPath string, opts Options, dopts DurabilityOptions) (*Engine, RecoveryReport, error) {
	return openDurable(opts, dopts, func() (*relation.Relation, error) {
		if dataPath == "" {
			return relation.New(), nil
		}
		return storage.ReadDatasetFile(dataPath, storage.Options{})
	})
}

// OpenDurableDataset is OpenDurable with an in-memory seed dataset instead
// of a dataset file path: when the directory is empty, ds seeds the store;
// when it holds previous state, ds is ignored and recovery proceeds as
// usual. The engine takes ownership of the dataset's relation — the caller
// must not touch ds afterwards. This is the boot path for corpora whose
// annotation vocabulary spans several family prefixes (cpu:high, pos:noun,
// …), which the default-classified file format of OpenDurable cannot
// express.
func OpenDurableDataset(ds *Dataset, opts Options, dopts DurabilityOptions) (*Engine, RecoveryReport, error) {
	return openDurable(opts, dopts, func() (*relation.Relation, error) {
		return ds.rel, nil
	})
}

func openDurable(opts Options, dopts DurabilityOptions, bootstrap func() (*relation.Relation, error)) (*Engine, RecoveryReport, error) {
	cfg, err := opts.internal()
	if err != nil {
		return nil, RecoveryReport{}, err
	}
	wopts, err := dopts.internal()
	if err != nil {
		return nil, RecoveryReport{}, err
	}
	if dopts.Shards > 1 {
		cluster, err := shard.OpenDurable(shard.DurableOptions{
			Dir:    dopts.Dir,
			Shards: dopts.Shards,
			Wal:    wopts,
		}, cfg, incrementalOptions(opts), bootstrap)
		if err != nil {
			return nil, RecoveryReport{}, err
		}
		rec := publicClusterRecovery(cluster.Recovery(), dopts.Shards)
		return &Engine{cluster: cluster}, rec, nil
	}
	if shard.HasDurableState(dopts.Dir) {
		return nil, RecoveryReport{}, fmt.Errorf("annotadb: %s holds a sharded cluster; reopen it with DurabilityOptions.Shards set to its manifest's count", dopts.Dir)
	}
	store, err := wal.Open(wopts, cfg, incrementalOptions(opts), bootstrap)
	if err != nil {
		return nil, RecoveryReport{}, err
	}
	rec := publicRecovery(store.Recovery())
	eng := &Engine{
		ds:    &Dataset{rel: store.Engine().Relation()},
		eng:   store.Engine(),
		store: store,
	}
	return eng, rec, nil
}

func publicRecovery(r wal.Recovery) RecoveryReport {
	return RecoveryReport{
		FromCheckpoint:  r.FromCheckpoint,
		RecordsReplayed: r.Records,
		TornTail:        r.TornTail,
		DurationSeconds: r.Duration.Seconds(),
	}
}

func publicClusterRecovery(r shard.Recovery, shards int) RecoveryReport {
	return RecoveryReport{
		FromCheckpoint:  r.FromCheckpoint,
		RecordsReplayed: r.Records,
		TornTail:        r.TornTail,
		Shards:          shards,
		PaddedTuples:    r.PaddedTuples,
		DurationSeconds: r.Duration.Seconds(),
	}
}

// Durability returns write-ahead log and checkpoint statistics, or nil for
// a purely in-memory server (one whose engine did not come from
// OpenDurable).
func (s *Server) Durability() *DurabilityStats {
	if s.cluster != nil {
		out := &DurabilityStats{
			Recovery: publicClusterRecovery(s.cluster.Recovery(), len(s.cluster.Stores())),
			Events:   s.eventLogStats(),
		}
		for i, st := range s.cluster.Stats() {
			out.RecordsAppended += st.Records
			out.LogBytes += st.LogBytes
			out.Syncs += st.Syncs
			out.UnsyncedRecords += st.UnsyncedRecords
			out.UnsyncedBytes += st.UnsyncedBytes
			out.Checkpoints += st.Checkpoints
			out.CheckpointErrors += st.CheckpointErrors
			if st.LastCheckpointUnixNano > out.LastCheckpointUnixNano {
				out.LastCheckpointUnixNano = st.LastCheckpointUnixNano
			}
			out.PerShard = append(out.PerShard, ShardDurabilityStats{
				Shard:            i,
				RecordsAppended:  st.Records,
				LogBytes:         st.LogBytes,
				Syncs:            st.Syncs,
				UnsyncedRecords:  st.UnsyncedRecords,
				UnsyncedBytes:    st.UnsyncedBytes,
				Checkpoints:      st.Checkpoints,
				CheckpointErrors: st.CheckpointErrors,
			})
		}
		return out
	}
	if s.store == nil {
		return nil
	}
	st := s.store.Stats()
	return &DurabilityStats{
		RecordsAppended:        st.Records,
		LogBytes:               st.LogBytes,
		Syncs:                  st.Syncs,
		UnsyncedRecords:        st.UnsyncedRecords,
		UnsyncedBytes:          st.UnsyncedBytes,
		Checkpoints:            st.Checkpoints,
		CheckpointErrors:       st.CheckpointErrors,
		LastCheckpointUnixNano: st.LastCheckpointUnixNano,
		Recovery:               publicRecovery(st.Recovery),
		Events:                 s.eventLogStats(),
	}
}

// eventLogStats snapshots the durable event log's counters, nil when the
// server streams in memory only (or not at all).
func (s *Server) eventLogStats() *EventLogStats {
	if s.eventLog == nil {
		return nil
	}
	st := s.eventLog.Stats()
	return &EventLogStats{
		Segments:       st.Segments,
		FirstCursor:    st.FirstCursor,
		NextCursor:     st.NextCursor,
		RetainedBytes:  st.RetainedBytes,
		Appends:        st.Appends,
		Syncs:          st.Syncs,
		Rotations:      st.Rotations,
		RotatedBytes:   st.RotatedBytes,
		RetentionTrims: st.RetentionTrims,
		TrimmedBytes:   st.TrimmedBytes,
	}
}
