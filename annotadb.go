// Package annotadb discovers, maintains, serves, and persists correlations
// in annotated databases. It is a Go implementation — grown into an online
// system — of "Discovering Correlations in Annotated Databases" (Donohue,
// advised by Eltabakh; WPI 2015 / EDBT 2016): association rules whose
// right-hand side is an annotation are mined from an annotated relation,
// kept incrementally exact as tuples and annotations arrive, and exploited
// to recommend missing annotations.
//
// # Building blocks
//
//   - Dataset: an annotated relation, loadable from the paper's text format
//     (Figure 4: one tuple per line, Annot_-prefixed tokens are
//     annotations);
//   - Mine: one-shot rule discovery (data-to-annotation and
//     annotation-to-annotation families, via Apriori or FP-Growth);
//   - Engine: incremental maintenance — rules stay exactly equal to a full
//     re-mine while annotated tuples (Case 1), un-annotated tuples
//     (Case 2), annotation batches (Case 3, Figure 14), and annotation
//     removals are applied;
//   - Recommend*: rule-backed suggestions of missing annotations, as
//     database scans and as insert triggers (§5);
//   - Server (NewServer): a concurrent serving core — reads answer from an
//     atomically published immutable snapshot and never block behind
//     writes, writes are coalesced by a single writer; cmd/annotserve puts
//     it on HTTP. With ServeOptions.Shards (or NewShardedServer) the state
//     partitions by annotation family into independent write paths whose
//     merged view stays exact for intra-family correlations;
//   - OpenDurable: the persistent form of the above — every update batch
//     is write-ahead logged and the mined state is checkpointed, so a
//     restart recovers in time proportional to the un-checkpointed tail
//     instead of re-mining the relation;
//   - Server.Subscribe: a durable, cursor-resumable stream of rule churn —
//     every published generation is diffed against its predecessor into
//     typed events (promoted, demoted, added, retired, confidence changed)
//     retained in rotated log segments, so curators watch the rules evolve
//     instead of polling and diffing; cmd/annotserve serves it as
//     GET /events (Server-Sent Events with Last-Event-ID resume).
//
// Generalization rules ("Annot_X : Annot_1, Annot_5", Figure 9) can be
// applied to a Dataset or routed through an Engine, extending the database
// with concept labels so correlations hidden by raw-annotation variance
// become minable.
//
// # A minimal session
//
//	ds, _ := annotadb.LoadDataset("dataset.txt")
//	eng, _ := annotadb.NewEngine(ds, annotadb.Options{MinSupport: 0.4, MinConfidence: 0.8})
//	for _, r := range eng.Rules() {
//		fmt.Println(r)
//	}
//	eng.AddAnnotations([]annotadb.AnnotationUpdate{{Tuple: 150, Annotation: "Annot_3"}})
//	for _, rec := range eng.RecommendAll(annotadb.RecommendOptions{}) {
//		fmt.Println(rec)
//	}
//
// And the durable serving form of the same loop:
//
//	eng, rec, _ := annotadb.OpenDurable("dataset.txt", annotadb.Options{MinSupport: 0.4, MinConfidence: 0.8},
//		annotadb.DurabilityOptions{Dir: "./annotdata"})
//	srv := annotadb.NewServer(eng, annotadb.ServeOptions{})
//	defer srv.Close(context.Background())
//	srv.AddAnnotations(ctx, batch) // write-ahead logged, applied, published
//
// The runnable Example functions in this package exercise both paths.
//
// # Where things live
//
// ARCHITECTURE.md at the repository root maps every package to the paper
// section it implements and describes the serving and durability designs;
// cmd/annotserve/README.md documents the HTTP API with curl examples. The
// exported API of this module is doc-commented throughout and enforced by
// the docs lint (internal/docs).
package annotadb

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"annotadb/internal/generalize"
	"annotadb/internal/incremental"
	"annotadb/internal/itemset"
	"annotadb/internal/mining"
	"annotadb/internal/predict"
	"annotadb/internal/relation"
	"annotadb/internal/rules"
	"annotadb/internal/shard"
	"annotadb/internal/storage"
	"annotadb/internal/wal"
)

// AnnotationPrefix is the token prefix that marks annotations in dataset
// files, matching the paper's Annot_* convention.
const AnnotationPrefix = storage.DefaultAnnotationPrefix

// Dataset is an annotated relation: tuples of data values with attached
// annotation sets. The zero value is not usable; construct with NewDataset,
// ReadDataset, or LoadDataset.
type Dataset struct {
	rel *relation.Relation
}

// NewDataset returns an empty dataset.
func NewDataset() *Dataset {
	return &Dataset{rel: relation.New()}
}

// ReadDataset parses the paper's dataset format (Figure 4) from r.
func ReadDataset(r io.Reader) (*Dataset, error) {
	rel, err := storage.ReadDataset(r, storage.Options{})
	if err != nil {
		return nil, err
	}
	return &Dataset{rel: rel}, nil
}

// LoadDataset parses a dataset file in the paper's format.
func LoadDataset(path string) (*Dataset, error) {
	rel, err := storage.ReadDatasetFile(path, storage.Options{})
	if err != nil {
		return nil, err
	}
	return &Dataset{rel: rel}, nil
}

// Len returns the number of tuples.
func (d *Dataset) Len() int { return d.rel.Len() }

// AddTuple appends one tuple and returns its zero-based position.
// Annotation tokens must carry the Annot_ prefix if the dataset is to be
// written back in the paper's file format.
func (d *Dataset) AddTuple(values []string, annotations []string) (int, error) {
	tu, err := buildTuple(d.rel.Dictionary(), values, annotations)
	if err != nil {
		return 0, err
	}
	return d.rel.Append(tu), nil
}

// Tuple returns the tokens of the tuple at position i.
func (d *Dataset) Tuple(i int) (values []string, annotations []string, err error) {
	tu, err := d.rel.Tuple(i)
	if err != nil {
		return nil, nil, err
	}
	dict := d.rel.Dictionary()
	return dict.Tokens(tu.Data), dict.Tokens(tu.Annots), nil
}

// Stats summarizes the dataset.
type Stats struct {
	Tuples              int
	AnnotatedTuples     int
	Attachments         int
	DistinctAnnotations int
	DistinctValues      int
}

// Stats computes summary statistics.
func (d *Dataset) Stats() Stats {
	s := d.rel.Stats()
	return Stats{
		Tuples:              s.Tuples,
		AnnotatedTuples:     s.AnnotatedTuples,
		Attachments:         s.Annotations,
		DistinctAnnotations: s.DistinctAnnots,
		DistinctValues:      s.DistinctData,
	}
}

// Write writes the dataset in the paper's file format.
func (d *Dataset) Write(w io.Writer) error {
	return storage.WriteDataset(w, d.rel, storage.Options{})
}

// Save writes the dataset file atomically (temp file + rename), mirroring
// the paper's application, which rewrites the dataset after every update.
func (d *Dataset) Save(path string) error {
	return storage.WriteDatasetFile(path, d.rel, storage.Options{})
}

// AnnotationFrequency returns the number of tuples carrying the annotation
// token — the paper's annotation frequency table.
func (d *Dataset) AnnotationFrequency(token string) int {
	it, ok := d.rel.Dictionary().Lookup(token)
	if !ok {
		return 0
	}
	return d.rel.Frequency(it)
}

func buildTuple(dict *relation.Dictionary, values, annotations []string) (relation.Tuple, error) {
	items := make([]itemset.Item, 0, len(values)+len(annotations))
	for _, tok := range values {
		it, err := dict.InternData(tok)
		if err != nil {
			return relation.Tuple{}, err
		}
		items = append(items, it)
	}
	for _, tok := range annotations {
		it, err := dict.InternAnnotation(tok)
		if err != nil {
			return relation.Tuple{}, err
		}
		items = append(items, it)
	}
	return relation.NewTuple(items...), nil
}

// Options configure mining and maintenance.
type Options struct {
	// MinSupport α and MinConfidence β (Defs. 4.2/4.3 thresholds).
	MinSupport    float64
	MinConfidence float64
	// Algorithm selects the miner: "apriori" (default) or "fpgrowth".
	Algorithm string
	// CandidateSlack γ keeps near-miss rules down to γ·α·N for cheap
	// incremental promotion; 0 means the default 0.8, 1 disables the pool.
	CandidateSlack float64
	// MaxPatternLen bounds rule pattern size; 0 is unbounded.
	MaxPatternLen int
	// Parallelism bounds mining goroutines; 0 uses GOMAXPROCS.
	Parallelism int
	// ExcludeGeneralizations hides derived labels from mining.
	ExcludeGeneralizations bool
}

func (o Options) internal() (mining.Config, error) {
	cfg := mining.Config{
		MinSupport:     o.MinSupport,
		MinConfidence:  o.MinConfidence,
		CandidateSlack: o.CandidateSlack,
		MaxLen:         o.MaxPatternLen,
		Parallelism:    o.Parallelism,
		ExcludeDerived: o.ExcludeGeneralizations,
	}
	switch strings.ToLower(o.Algorithm) {
	case "", "apriori":
		cfg.Algorithm = mining.AlgorithmApriori
	case "fpgrowth", "fp-growth":
		cfg.Algorithm = mining.AlgorithmFPGrowth
	default:
		return cfg, fmt.Errorf("annotadb: unknown algorithm %q (want apriori or fpgrowth)", o.Algorithm)
	}
	return cfg, cfg.Validate()
}

// RuleKind names the two rule families of the paper.
type RuleKind string

const (
	// DataToAnnotation rules have data values on the left-hand side.
	DataToAnnotation RuleKind = "data-to-annotation"
	// AnnotationToAnnotation rules have annotations on the left-hand side.
	AnnotationToAnnotation RuleKind = "annotation-to-annotation"
)

// Rule is an association rule with string tokens and derived statistics.
type Rule struct {
	LHS        []string
	RHS        string
	Kind       RuleKind
	Support    float64
	Confidence float64
	// Raw integer counts: PatternCount tuples contain LHS∪{RHS}, LHSCount
	// contain LHS, out of N tuples.
	PatternCount int
	LHSCount     int
	N            int
}

// String renders the Figure 7 output line.
func (r Rule) String() string {
	return fmt.Sprintf("%s -> %s (confidence: %.4f, support: %.4f)",
		strings.Join(r.LHS, ", "), r.RHS, r.Confidence, r.Support)
}

func publicRule(r rules.Rule, dict *relation.Dictionary) Rule {
	kind := DataToAnnotation
	if r.Kind() == rules.AnnotationToAnnotation {
		kind = AnnotationToAnnotation
	}
	return Rule{
		LHS:          dict.Tokens(r.LHS),
		RHS:          dict.Token(r.RHS),
		Kind:         kind,
		Support:      r.Support(),
		Confidence:   r.Confidence(),
		PatternCount: r.PatternCount,
		LHSCount:     r.LHSCount,
		N:            r.N,
	}
}

func publicRules(set *rules.Set, dict *relation.Dictionary) []Rule {
	sorted := set.Sorted()
	out := make([]Rule, len(sorted))
	for i, r := range sorted {
		out[i] = publicRule(r, dict)
	}
	return out
}

// Mine runs a one-shot mining pass and returns the valid rules, ordered
// deterministically (data-to-annotation first, then lexicographically).
func Mine(d *Dataset, opts Options) ([]Rule, error) {
	cfg, err := opts.internal()
	if err != nil {
		return nil, err
	}
	res, err := mining.Mine(d.rel, cfg)
	if err != nil {
		return nil, err
	}
	return publicRules(res.Rules, d.rel.Dictionary()), nil
}

// WriteRules writes rules in the paper's Figure 7 output format.
func WriteRules(w io.Writer, rs []Rule, minSupport, minConfidence float64) error {
	if _, err := fmt.Fprintf(w, "# association rules (min support %.4f, min confidence %.4f)\n", minSupport, minConfidence); err != nil {
		return err
	}
	for _, r := range rs {
		if _, err := fmt.Fprintln(w, r.String()); err != nil {
			return err
		}
	}
	return nil
}

// AnnotationUpdate attaches Annotation to the tuple at zero-based position
// Tuple (the programmatic form of a Figure 14 batch line).
type AnnotationUpdate struct {
	Tuple      int
	Annotation string
}

// UpdateReport summarizes one incremental maintenance operation.
type UpdateReport struct {
	// Operation names the update case that ran.
	Operation string
	// Applied counts tuples appended or annotations attached; Skipped
	// counts duplicate annotation attachments ignored.
	Applied int
	Skipped int
	// Rule churn caused by the update.
	Promoted   int
	Demoted    int
	Discovered int
	Dropped    int
	// Remined records that the engine fell back to a full re-mine.
	Remined bool
	// DurationSeconds is the wall time of the maintenance work.
	DurationSeconds float64
	// Seq is the snapshot sequence current when a Server acknowledged the
	// write (zero for direct Engine operations, which have no snapshot
	// machinery). Because a serving writer publishes the new snapshot
	// before delivering the ack, every read served at or after Seq
	// observes this write: a client that remembers the largest Seq it has
	// been acked and compares it against the seq reported by /recommend
	// gets read-your-writes. Seq restarts from one when a durable server
	// reopens.
	Seq uint64
	// SeqVector is the per-shard equivalent of Seq on sharded servers
	// (nil otherwise): component i was read from shard i after the ack,
	// so a read whose seq_vector dominates it observes the write. Seq is
	// then the vector's sum — monotone, so still usable as a scalar
	// staleness bound.
	SeqVector []uint64
}

func publicReport(r *incremental.Report) UpdateReport {
	return UpdateReport{
		Operation:       r.Case.String(),
		Applied:         r.Applied,
		Skipped:         r.Skipped,
		Promoted:        r.Promoted,
		Demoted:         r.Demoted,
		Discovered:      r.Discovered,
		Dropped:         r.Dropped,
		Remined:         r.Remined,
		DurationSeconds: r.Duration.Seconds(),
	}
}

// TupleSpec is a tuple to insert: data value tokens plus annotation tokens.
type TupleSpec struct {
	Values      []string
	Annotations []string
}

// Engine maintains the rule set of a dataset incrementally. After an Engine
// is created, route all dataset mutations through it; mutating the Dataset
// directly leaves the engine's rules stale.
//
// An engine opened with DurabilityOptions.Shards > 1 is a handle on a
// sharded cluster: wrap it in NewServer and route everything through the
// Server — direct Engine reads return empty results and direct Engine
// writes fail with ErrShardedEngine (there is no single underlying engine
// to call).
type Engine struct {
	ds  *Dataset
	eng *incremental.Engine
	// store is the durable backing store when the engine came from
	// OpenDurable; NewServer wires it into the serving writer's journal.
	store *wal.Store
	// cluster is the sharded durable backing store when the engine came
	// from OpenDurable with Shards > 1; NewServer wires its per-shard
	// stores into the per-shard writers' journals.
	cluster *shard.Cluster
}

// ErrShardedEngine is returned by direct Engine mutations on a sharded
// engine; wrap the engine in NewServer and write through the Server.
var ErrShardedEngine = errors.New("annotadb: sharded engine: route reads and writes through NewServer")

// incrementalOptions maps public Options to engine internals.
func incrementalOptions(opts Options) incremental.Options {
	return incremental.Options{
		DisableCandidateStore: opts.CandidateSlack >= 1,
	}
}

// NewEngine mines the dataset once and returns an engine that keeps the
// result exact under updates. The engine is purely in-memory; use
// OpenDurable for one whose serving state survives restarts.
func NewEngine(d *Dataset, opts Options) (*Engine, error) {
	cfg, err := opts.internal()
	if err != nil {
		return nil, err
	}
	eng, err := incremental.New(d.rel, cfg, incrementalOptions(opts))
	if err != nil {
		return nil, err
	}
	return &Engine{ds: d, eng: eng}, nil
}

// Dataset returns the engine's dataset (treat as read-only).
func (e *Engine) Dataset() *Dataset { return e.ds }

// Rules returns the current valid rules, deterministically ordered, or nil
// for a sharded engine (read through the Server instead).
func (e *Engine) Rules() []Rule {
	if e.eng == nil {
		return nil
	}
	return publicRules(e.eng.Rules(), e.ds.rel.Dictionary())
}

// Candidates returns the near-miss candidate store (rules slightly below
// the thresholds, retained for cheap promotion). Nil for a sharded engine.
func (e *Engine) Candidates() []Rule {
	if e.eng == nil {
		return nil
	}
	return publicRules(e.eng.Candidates(), e.ds.rel.Dictionary())
}

// AddTuples appends a batch of tuples, choosing the paper's Case 1 path
// when any tuple carries annotations and the cheaper Case 2 path when none
// do.
func (e *Engine) AddTuples(batch []TupleSpec) (UpdateReport, error) {
	if e.eng == nil {
		return UpdateReport{}, ErrShardedEngine
	}
	dict := e.ds.rel.Dictionary()
	tuples := make([]relation.Tuple, 0, len(batch))
	annotated := false
	for i, spec := range batch {
		tu, err := buildTuple(dict, spec.Values, spec.Annotations)
		if err != nil {
			return UpdateReport{}, fmt.Errorf("annotadb: tuple %d: %w", i, err)
		}
		if tu.Annotated() {
			annotated = true
		}
		tuples = append(tuples, tu)
	}
	var (
		rep *incremental.Report
		err error
	)
	if annotated {
		rep, err = e.eng.AddAnnotatedTuples(tuples)
	} else {
		rep, err = e.eng.AddUnannotatedTuples(tuples)
	}
	if err != nil {
		return UpdateReport{}, err
	}
	return publicReport(rep), nil
}

// AddAnnotations applies a batch of annotation attachments (Case 3,
// Figures 12–13). Duplicate attachments are skipped and reported, matching
// the paper's "a data tuple can have a given label at most once".
func (e *Engine) AddAnnotations(batch []AnnotationUpdate) (UpdateReport, error) {
	if e.eng == nil {
		return UpdateReport{}, ErrShardedEngine
	}
	dict := e.ds.rel.Dictionary()
	updates := make([]relation.AnnotationUpdate, 0, len(batch))
	for i, u := range batch {
		it, err := dict.InternAnnotation(u.Annotation)
		if err != nil {
			return UpdateReport{}, fmt.Errorf("annotadb: update %d: %w", i, err)
		}
		updates = append(updates, relation.AnnotationUpdate{Index: u.Tuple, Annotation: it})
	}
	rep, err := e.eng.AddAnnotations(updates)
	if err != nil {
		return UpdateReport{}, err
	}
	return publicReport(rep), nil
}

// RemoveAnnotations detaches a batch of annotations (the paper's §6 future
// work, implemented as Case 3 in reverse). Entries whose annotation is not
// present are skipped and reported. Confidence can rise under removal, so
// the report may show promotions.
func (e *Engine) RemoveAnnotations(batch []AnnotationUpdate) (UpdateReport, error) {
	if e.eng == nil {
		return UpdateReport{}, ErrShardedEngine
	}
	dict := e.ds.rel.Dictionary()
	updates := make([]relation.AnnotationUpdate, 0, len(batch))
	for i, u := range batch {
		it, ok := dict.Lookup(u.Annotation)
		if !ok {
			return UpdateReport{}, fmt.Errorf("annotadb: removal %d: annotation %q unknown to this dataset", i, u.Annotation)
		}
		if !it.IsAnnotation() {
			return UpdateReport{}, fmt.Errorf("annotadb: removal %d: token %q is a data value", i, u.Annotation)
		}
		updates = append(updates, relation.AnnotationUpdate{Index: u.Tuple, Annotation: it})
	}
	rep, err := e.eng.RemoveAnnotations(updates)
	if err != nil {
		return UpdateReport{}, err
	}
	return publicReport(rep), nil
}

// ApplyUpdateFile reads a Figure 14-format annotation batch ("150:Annot_3",
// 1-based tuple indexes) and applies it through the engine.
func (e *Engine) ApplyUpdateFile(r io.Reader) (UpdateReport, error) {
	if e.eng == nil {
		return UpdateReport{}, ErrShardedEngine
	}
	lines, err := storage.ReadUpdateBatch(r, storage.Options{})
	if err != nil {
		return UpdateReport{}, err
	}
	updates, err := storage.ResolveUpdates(e.ds.rel, lines)
	if err != nil {
		return UpdateReport{}, err
	}
	rep, err := e.eng.AddAnnotations(updates)
	if err != nil {
		return UpdateReport{}, err
	}
	return publicReport(rep), nil
}

// Verify re-mines from scratch and checks the maintained rules are
// identical — the paper's own validation methodology, exposed for tests and
// audits. On a sharded engine every shard is verified against a re-mine of
// its own family projection.
func (e *Engine) Verify() error {
	if e.cluster != nil {
		for s, eng := range e.cluster.Engines() {
			if err := eng.Verify(); err != nil {
				return fmt.Errorf("annotadb: shard %d: %w", s, err)
			}
		}
		return nil
	}
	return e.eng.Verify()
}

// Generalization is one concept-mapping rule (Figure 9): any tuple carrying
// any source annotation receives Label.
type Generalization struct {
	Label   string
	Sources []string
}

// GeneralizationReport summarizes one generalization pass.
type GeneralizationReport struct {
	// Attached counts new (tuple, label) attachments.
	Attached int
	// PerLabel breaks Attached down by label.
	PerLabel map[string]int
	// UnknownSources lists source annotations absent from the dataset.
	UnknownSources []string
	// Update carries the maintenance report when the pass ran through an
	// Engine.
	Update *UpdateReport
}

// ParseGeneralizations reads Figure 9-format rules
// ("Annot_X : Annot_1, Annot_5").
func ParseGeneralizations(r io.Reader) ([]Generalization, error) {
	parsed, err := generalize.Parse(r)
	if err != nil {
		return nil, err
	}
	out := make([]Generalization, len(parsed))
	for i, g := range parsed {
		out[i] = Generalization{Label: g.Label, Sources: g.Sources}
	}
	return out, nil
}

func buildHierarchy(gens []Generalization) (*generalize.Hierarchy, error) {
	rs := make([]generalize.Rule, len(gens))
	for i, g := range gens {
		rs[i] = generalize.Rule{Label: g.Label, Sources: g.Sources}
	}
	return generalize.Build(rs)
}

// ApplyGeneralizations extends the dataset with concept labels (at most one
// per tuple per label; idempotent). Use Engine.ApplyGeneralizations instead
// when an engine manages the dataset.
func (d *Dataset) ApplyGeneralizations(gens []Generalization) (*GeneralizationReport, error) {
	h, err := buildHierarchy(gens)
	if err != nil {
		return nil, err
	}
	res, err := h.Apply(d.rel)
	if err != nil {
		return nil, err
	}
	return &GeneralizationReport{Attached: res.Attached, PerLabel: res.PerLabel, UnknownSources: res.UnknownSources}, nil
}

// ApplyGeneralizations extends the engine's dataset with concept labels and
// routes the attachments through incremental maintenance as a Case 3 batch,
// so the mined rules immediately reflect the extended database.
func (e *Engine) ApplyGeneralizations(gens []Generalization) (*GeneralizationReport, error) {
	if e.eng == nil {
		return nil, ErrShardedEngine
	}
	h, err := buildHierarchy(gens)
	if err != nil {
		return nil, err
	}
	plan, res, err := h.PlanUpdates(e.ds.rel)
	if err != nil {
		return nil, err
	}
	out := &GeneralizationReport{Attached: res.Attached, PerLabel: res.PerLabel, UnknownSources: res.UnknownSources}
	if len(plan) == 0 {
		return out, nil
	}
	rep, err := e.eng.AddAnnotations(plan)
	if err != nil {
		return nil, err
	}
	pub := publicReport(rep)
	out.Update = &pub
	return out, nil
}

// Recommendation proposes attaching Annotation to the tuple at zero-based
// position Tuple (-1 for a tuple not yet inserted), justified by Rule.
type Recommendation struct {
	Tuple      int
	Annotation string
	Rule       Rule
}

// String renders the recommendation for curators, with the supporting
// rule's properties as the paper's Figure 17 prescribes.
func (r Recommendation) String() string {
	target := "incoming tuple"
	if r.Tuple >= 0 {
		target = fmt.Sprintf("tuple %d", r.Tuple+1)
	}
	return fmt.Sprintf("%s: add %s  [because %s]", target, r.Annotation, r.Rule)
}

// RecommendOptions filter recommendation output.
type RecommendOptions struct {
	// MinConfidence and MinSupport filter supporting rules beyond their
	// validity thresholds.
	MinConfidence float64
	MinSupport    float64
	// ExcludeGeneralizations suppresses recommendations of derived labels.
	ExcludeGeneralizations bool
	// Limit caps the number of recommendations (0 = unbounded).
	Limit int
}

func (o RecommendOptions) internal() predict.Options {
	return predict.Options{
		MinConfidence:  o.MinConfidence,
		MinSupport:     o.MinSupport,
		ExcludeDerived: o.ExcludeGeneralizations,
		Limit:          o.Limit,
	}
}

func publicRecommendations(recs []predict.Recommendation, dict *relation.Dictionary) []Recommendation {
	out := make([]Recommendation, len(recs))
	for i, r := range recs {
		out[i] = Recommendation{
			Tuple:      r.TupleIndex,
			Annotation: dict.Token(r.Annotation),
			Rule:       publicRule(r.Rule, dict),
		}
	}
	return out
}

// RecommendAll scans the whole dataset for missing annotations (§5 case 1).
// Nil for a sharded engine.
func (e *Engine) RecommendAll(opts RecommendOptions) []Recommendation {
	if e.eng == nil {
		return nil
	}
	rc := predict.NewRecommender(e.ds.rel, e.eng, opts.internal())
	return publicRecommendations(rc.ScanAll(), e.ds.rel.Dictionary())
}

// RecommendRange scans tuple positions [start, end). Nil for a sharded
// engine.
func (e *Engine) RecommendRange(start, end int, opts RecommendOptions) []Recommendation {
	if e.eng == nil {
		return nil
	}
	rc := predict.NewRecommender(e.ds.rel, e.eng, opts.internal())
	return publicRecommendations(rc.ScanRange(start, end), e.ds.rel.Dictionary())
}

// RecommendForTuple evaluates a tuple before insertion (§5 case 2, the
// trigger path): which annotations would the current rules suggest?
func (e *Engine) RecommendForTuple(spec TupleSpec, opts RecommendOptions) ([]Recommendation, error) {
	if e.eng == nil {
		return nil, ErrShardedEngine
	}
	tu, err := buildTuple(e.ds.rel.Dictionary(), spec.Values, spec.Annotations)
	if err != nil {
		return nil, err
	}
	rc := predict.NewRecommender(e.ds.rel, e.eng, opts.internal())
	return publicRecommendations(rc.ForTuple(tu), e.ds.rel.Dictionary()), nil
}

// AddTuplesWithTrigger appends a batch and immediately returns trigger
// recommendations for the inserted tuples, mirroring the paper's
// database-trigger exploitation: "when a patch of new tuples is added to
// the database, the system automatically compares these tuples to the
// association rules".
func (e *Engine) AddTuplesWithTrigger(batch []TupleSpec, opts RecommendOptions) (UpdateReport, []Recommendation, error) {
	if e.eng == nil {
		return UpdateReport{}, nil, ErrShardedEngine
	}
	start := e.ds.Len()
	rep, err := e.AddTuples(batch)
	if err != nil {
		return UpdateReport{}, nil, err
	}
	rc := predict.NewRecommender(e.ds.rel, e.eng, opts.internal())
	recs := publicRecommendations(rc.OnInsert(start), e.ds.rel.Dictionary())
	return rep, recs, nil
}

// Annotations lists every annotation token present in the dataset with its
// frequency, sorted by token.
func (d *Dataset) Annotations() []AnnotationCount {
	dict := d.rel.Dictionary()
	var out []AnnotationCount
	for it, n := range d.rel.FrequencyTable() {
		if n > 0 {
			out = append(out, AnnotationCount{Token: dict.Token(it), Count: n, Derived: it.IsDerived()})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Token < out[j].Token })
	return out
}

// AnnotationCount pairs an annotation token with its tuple frequency.
type AnnotationCount struct {
	Token   string
	Count   int
	Derived bool
}
